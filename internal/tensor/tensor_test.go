package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fp16"
)

func TestVec1D(t *testing.T) {
	d := Vec1D(10, 5)
	want := []int{10, 11, 12, 13, 14}
	got := d.Offsets()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("offset[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestStrided(t *testing.T) {
	d := Strided(0, 4, 3)
	want := []int{0, 3, 6, 9}
	for i, o := range d.Offsets() {
		if o != want[i] {
			t.Errorf("offset[%d] = %d, want %d", i, o, want[i])
		}
	}
}

func TestMultiDim(t *testing.T) {
	// 2x3 row-major tensor with row stride 8 (padded rows).
	d := Descriptor{
		Base:   100,
		Shape:  [MaxDims]int{1, 1, 2, 3},
		Stride: [MaxDims]int{0, 0, 8, 1},
	}
	want := []int{100, 101, 102, 108, 109, 110}
	got := d.Offsets()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("offset[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if d.Len() != 6 {
		t.Errorf("Len = %d, want 6", d.Len())
	}
}

func TestDescriptorPanicsPastEnd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic advancing exhausted descriptor")
		}
	}()
	d := Vec1D(0, 1)
	d.Next()
	d.Next()
}

func TestDescriptorProperties(t *testing.T) {
	// The address sequence of a strided descriptor is an arithmetic
	// progression; the zero-outer-stride trick returns to start.
	f := func(base uint8, n uint8, stride uint8) bool {
		nn := int(n%32) + 1
		st := int(stride % 7)
		d := Strided(int(base), nn, st)
		offs := d.Offsets()
		if len(offs) != nn {
			return false
		}
		for i, o := range offs {
			if o != int(base)+i*st {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestArenaBudget(t *testing.T) {
	a := NewArena(48 * 1024)
	// The paper's 3D layout: 6 matrix diagonals + v,u (with padding) + 5
	// FIFO buffers of 20. At Z = 1536 the matrix+vector data is ~31 KB.
	z := 1536
	words := 0
	for _, n := range []int{z, z, z, z, z, z + 1, z + 1, z + 2} {
		if _, err := a.Alloc("vec", n); err != nil {
			t.Fatalf("alloc failed: %v", err)
		}
		words += n
	}
	if a.Used() != words*BytesPerWord {
		t.Errorf("Used = %d, want %d", a.Used(), words*BytesPerWord)
	}
	// 10 Z-length vectors ~ 31KB fits; but 25 do not.
	b := NewArena(48 * 1024)
	for i := 0; i < 16; i++ {
		if _, err := b.Alloc("v", z); err != nil {
			return // expected to fail at the 17th (16*1536*2 = 49152 > 49152? exactly)
		}
	}
	if _, err := b.Alloc("v", z); err == nil {
		t.Error("arena should have rejected allocation beyond 48KB")
	}
}

func TestArenaSliceAliasing(t *testing.T) {
	a := NewArena(1024)
	base := a.MustAlloc("x", 8)
	s := a.Slice(base, 8)
	s[3] = fp16.One
	if a.At(base+3) != fp16.One {
		t.Error("Slice writes must be visible through At")
	}
}

func TestOpsAgainstReference(t *testing.T) {
	a := NewArena(1 << 16)
	n := 64
	xb := a.MustAlloc("x", n)
	yb := a.MustAlloc("y", n)
	db := a.MustAlloc("d", n)
	for i := 0; i < n; i++ {
		a.Set(xb+i, fp16.FromFloat64(float64(i)*0.25-3))
		a.Set(yb+i, fp16.FromFloat64(float64(i%5)+0.5))
	}
	x, y, d := Vec1D(xb, n), Vec1D(yb, n), Vec1D(db, n)

	MulInto(a, d, x, y)
	for i := 0; i < n; i++ {
		want := fp16.Mul(a.At(xb+i), a.At(yb+i))
		if a.At(db+i) != want {
			t.Fatalf("MulInto[%d] = %v, want %v", i, a.At(db+i), want)
		}
	}

	AddInto(a, d, x, y)
	for i := 0; i < n; i++ {
		want := fp16.Add(a.At(xb+i), a.At(yb+i))
		if a.At(db+i) != want {
			t.Fatalf("AddInto[%d]", i)
		}
	}

	CopyInto(a, d, x)
	s := fp16.FromFloat64(1.5)
	AxpyInto(a, s, d, y)
	for i := 0; i < n; i++ {
		want := fp16.FMA(s, a.At(yb+i), a.At(xb+i))
		if a.At(db+i) != want {
			t.Fatalf("AxpyInto[%d] = %v, want %v", i, a.At(db+i), want)
		}
	}

	got := DotMixedDesc(a, x, y)
	var ref float32
	for i := 0; i < n; i++ {
		ref = fp16.MixedFMAC(ref, a.At(xb+i), a.At(yb+i))
	}
	if got != ref {
		t.Errorf("DotMixedDesc = %g, want %g", got, ref)
	}
	if math.Abs(float64(got)) < 1e-9 {
		t.Error("dot product suspiciously zero")
	}
}

func TestShiftedDescriptorsForZStencil(t *testing.T) {
	// The SpMV listing's zp/zm accumulators alias u shifted by one:
	// zp_acc base u+2, zm_acc base u+0, center u+1. Verify shift algebra:
	// with v padded by one zero, u[k] accumulates v[k-1]*zm + v[k+1]*zp.
	a := NewArena(4096)
	z := 8
	vb := a.MustAlloc("v", z+1) // v[z] = 0 pad
	ub := a.MustAlloc("u", z+2)
	zmb := a.MustAlloc("zm", z+1) // padded like the listing
	zpb := a.MustAlloc("zp", z)
	for i := 0; i < z; i++ {
		a.Set(vb+i, fp16.FromFloat64(float64(i+1)))
		a.Set(zpb+i, fp16.FromFloat64(2))
	}
	for i := 0; i < z+1; i++ {
		a.Set(zmb+i, fp16.FromFloat64(3))
	}
	// u[0..z+1] zero; zm pass: u[k] += v0[k]*zm[k] with zm_acc base u+0
	// over Z+1 elements; zp pass: u[k+2] += v[k]*zp[k].
	zmAcc := Vec1D(ub, z+1)
	v0 := Vec1D(vb, z+1)
	zmA := Vec1D(zmb, z+1)
	MulInto(a, zmAcc, v0, zmA)
	zpAcc := Vec1D(ub+2, z)
	v1 := Vec1D(vb, z)
	zpA := Vec1D(zpb, z)
	prod := a.MustAlloc("tmp", z)
	MulInto(a, Vec1D(prod, z), v1, zpA)
	AccumulateInto(a, zpAcc, Vec1D(prod, z))

	// Interior result u[k+1] (k = 0..z-1) should be 3*v[k+1] + 2*v[k-1]
	// where out-of-range v is zero.
	for k := 0; k < z; k++ {
		var want float64
		if k+1 < z {
			want += 3 * float64(k+2)
		}
		if k-1 >= 0 {
			want += 2 * float64(k)
		}
		got := a.At(ub + 1 + k).Float64()
		if got != want {
			t.Errorf("u[%d] = %g, want %g", k+1, got, want)
		}
	}
}

func TestFIFO(t *testing.T) {
	a := NewArena(1024)
	base := a.MustAlloc("fifo", 4)
	f := NewFIFO(base, 4)
	activations := 0
	f.OnPush = func() { activations++ }

	if _, ok := f.Pop(a); ok {
		t.Error("pop of empty FIFO should fail")
	}
	for i := 0; i < 4; i++ {
		if !f.Push(a, fp16.FromFloat64(float64(i))) {
			t.Fatalf("push %d failed", i)
		}
	}
	if f.Push(a, fp16.One) {
		t.Error("push to full FIFO should fail (thread stalls)")
	}
	if activations != 4 {
		t.Errorf("activations = %d, want 4", activations)
	}
	for i := 0; i < 4; i++ {
		v, ok := f.Pop(a)
		if !ok || v.Float64() != float64(i) {
			t.Fatalf("pop %d = %v, %v", i, v, ok)
		}
	}
	// Wraparound.
	for i := 0; i < 6; i++ {
		f.Push(a, fp16.FromFloat64(float64(10+i)))
		v, ok := f.Pop(a)
		if !ok || v.Float64() != float64(10+i) {
			t.Fatalf("wrap pop %d", i)
		}
	}
}

func TestFIFOQuick(t *testing.T) {
	// Model-based: FIFO behaves like a bounded queue.
	f := func(ops []bool) bool {
		a := NewArena(256)
		base := a.MustAlloc("f", 5)
		q := NewFIFO(base, 5)
		var model []float64
		next := 0.0
		for _, push := range ops {
			if push {
				ok := q.Push(a, fp16.FromFloat64(next))
				if ok != (len(model) < 5) {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := q.Pop(a)
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v.Float64() != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
