package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

// JobState is a job's lifecycle position. Transitions:
//
//	queued → running → done | failed
//	running → suspended (shutdown mid-solve) → queued (restart)
//	running → queued (retry after a solve error, with backoff)
type JobState string

// Job states.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateSuspended JobState = "suspended"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
)

// terminal reports whether no further transitions happen.
func (s JobState) terminal() bool { return s == StateDone || s == StateFailed }

// JobResult is a finished solve's payload: core.Result in wire shape.
type JobResult struct {
	Iterations   int            `json:"iterations"`
	Converged    bool           `json:"converged"`
	Breakdown    string         `json:"breakdown,omitempty"`
	TrueResidual float64        `json:"true_residual"`
	History      []float64      `json:"history"`
	Telemetry    core.Telemetry `json:"telemetry"`
	// X is the solution vector; omitted from status and list views
	// (fetch it from /v1/jobs/{id}/solution).
	X []float64 `json:"x,omitempty"`
}

func resultFrom(res core.Result) *JobResult {
	return &JobResult{
		Iterations:   res.Iterations,
		Converged:    res.Converged,
		Breakdown:    res.Breakdown,
		TrueResidual: res.TrueResidual,
		History:      res.History,
		Telemetry:    res.Telemetry,
		X:            res.X,
	}
}

// JobView is the wire and spool representation of a job.
type JobView struct {
	ID          string    `json:"id"`
	Spec        JobSpec   `json:"spec"`
	State       JobState  `json:"state"`
	Attempts    int       `json:"attempts,omitempty"`
	Error       string    `json:"error,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	// Iter and Rel are the live progress of a running simulated solve
	// (the last appended residual-history entry).
	Iter   int        `json:"iter,omitempty"`
	Rel    float64    `json:"rel,omitempty"`
	Result *JobResult `json:"result,omitempty"`
}

// progressPoint is one residual-stream sample: the solver's 1-based
// iteration number and the relative residual it appended to History.
type progressPoint struct {
	Iter int     `json:"iter"`
	Rel  float64 `json:"rel"`
}

// job is the server-side state of one submitted solve.
type job struct {
	mu        sync.Mutex
	id        string
	spec      JobSpec
	state     JobState
	attempts  int
	errMsg    string
	submitted time.Time
	points    []progressPoint
	result    *JobResult
	done      chan struct{} // closed on the first terminal transition
}

func newJob(id string, spec JobSpec, submitted time.Time) *job {
	return &job{id: id, spec: spec, state: StateQueued, submitted: submitted, done: make(chan struct{})}
}

// view snapshots the job. includeX keeps the solution vector, which
// only the solution endpoint and the spool want.
func (j *job) view(includeX bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.id, Spec: j.spec, State: j.state, Attempts: j.attempts,
		Error: j.errMsg, SubmittedAt: j.submitted,
	}
	if n := len(j.points); n > 0 {
		v.Iter, v.Rel = j.points[n-1].Iter, j.points[n-1].Rel
	}
	if j.result != nil {
		r := *j.result
		if !includeX {
			r.X = nil
		}
		v.Result = &r
	}
	return v
}

// setState transitions the job, closing done on the first terminal
// state.
func (j *job) setState(s JobState) {
	j.mu.Lock()
	wasTerminal := j.state.terminal()
	j.state = s
	j.mu.Unlock()
	if s.terminal() && !wasTerminal {
		close(j.done)
	}
}

// addPoint records a live residual sample (the solver's Progress hook).
func (j *job) addPoint(iter int, rel float64) {
	j.mu.Lock()
	j.points = append(j.points, progressPoint{Iter: iter, Rel: rel})
	j.mu.Unlock()
}

// pointsSince returns a copy of the samples after index n and the
// job's state, read atomically — the stream endpoint's cursor read.
func (j *job) pointsSince(n int) ([]progressPoint, JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n >= len(j.points) {
		return nil, j.state
	}
	out := make([]progressPoint, len(j.points)-n)
	copy(out, j.points[n:])
	return out, j.state
}

// spool is the durable job store: one JSON record per job plus an
// optional checkpoint blob, both written atomically (tmp + rename) so a
// crash mid-write leaves the previous version intact. A zero dir
// disables persistence.
type spool struct{ dir string }

func (sp spool) enabled() bool { return sp.dir != "" }

func (sp spool) jobPath(id string) string  { return filepath.Join(sp.dir, id+".json") }
func (sp spool) ckptPath(id string) string { return filepath.Join(sp.dir, id+".ckpt") }

func (sp spool) writeFile(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func (sp spool) writeJob(v JobView) error {
	if !sp.enabled() {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return sp.writeFile(sp.jobPath(v.ID), data)
}

func (sp spool) writeCkpt(id string, blob []byte) error {
	if !sp.enabled() {
		return fmt.Errorf("service: no spool directory configured")
	}
	return sp.writeFile(sp.ckptPath(id), blob)
}

func (sp spool) readCkpt(id string) []byte {
	if !sp.enabled() {
		return nil
	}
	blob, err := os.ReadFile(sp.ckptPath(id))
	if err != nil {
		return nil
	}
	return blob
}

func (sp spool) removeCkpt(id string) {
	if sp.enabled() {
		os.Remove(sp.ckptPath(id))
	}
}

// load scans the spool for job records, in ID order.
func (sp spool) load() ([]JobView, error) {
	if !sp.enabled() {
		return nil, nil
	}
	entries, err := os.ReadDir(sp.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var views []JobView
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(sp.dir, name))
		if err != nil {
			return nil, err
		}
		var v JobView
		if err := json.Unmarshal(data, &v); err != nil {
			return nil, fmt.Errorf("service: corrupt spool record %s: %w", name, err)
		}
		views = append(views, v)
	}
	return views, nil
}
