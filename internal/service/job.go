package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/kernels"
)

// JobState is a job's lifecycle position. Transitions:
//
//	queued → running → done | failed | canceled | expired
//	running → suspended (shutdown mid-solve) → queued (restart)
//	running → queued (retry after a solve error, with backoff)
//	queued → canceled (DELETE before a worker picked it up)
//	queued → expired (deadline passed while waiting)
type JobState string

// Job states.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateSuspended JobState = "suspended"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	// StateCanceled: a client canceled the job (DELETE /v1/jobs/{id}).
	StateCanceled JobState = "canceled"
	// StateExpired: the job's deadline (spec timeout_ms, or the server
	// TTL) passed; distinct from canceled so clients can tell "I stopped
	// it" from "it ran out of time".
	StateExpired JobState = "expired"
)

// terminal reports whether no further transitions happen.
func (s JobState) terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled, StateExpired:
		return true
	}
	return false
}

// knownState reports whether s is a state this server writes — spool
// recovery quarantines records carrying anything else.
func knownState(s JobState) bool {
	switch s {
	case StateQueued, StateRunning, StateSuspended, StateDone, StateFailed, StateCanceled, StateExpired:
		return true
	}
	return false
}

// JobResult is a finished solve's payload: core.Result in wire shape.
type JobResult struct {
	Iterations   int            `json:"iterations"`
	Converged    bool           `json:"converged"`
	Breakdown    string         `json:"breakdown,omitempty"`
	TrueResidual float64        `json:"true_residual"`
	History      []float64      `json:"history"`
	Telemetry    core.Telemetry `json:"telemetry"`
	// Fallback marks a result produced by the host fallback path after
	// the job's simulated backend tripped its circuit breaker (see
	// JobSpec.AllowFallback for the numeric contract).
	Fallback bool `json:"fallback,omitempty"`
	// X is the solution vector; omitted from status and list views
	// (fetch it from /v1/jobs/{id}/solution).
	X []float64 `json:"x,omitempty"`
}

func resultFrom(res core.Result) *JobResult {
	return &JobResult{
		Iterations:   res.Iterations,
		Converged:    res.Converged,
		Breakdown:    res.Breakdown,
		TrueResidual: res.TrueResidual,
		History:      res.History,
		Telemetry:    res.Telemetry,
		X:            res.X,
	}
}

// JobView is the wire and spool representation of a job.
type JobView struct {
	ID          string    `json:"id"`
	Spec        JobSpec   `json:"spec"`
	State       JobState  `json:"state"`
	Attempts    int       `json:"attempts,omitempty"`
	Error       string    `json:"error,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	// Iter and Rel are the live progress of a running simulated solve
	// (the last appended residual-history entry).
	Iter   int        `json:"iter,omitempty"`
	Rel    float64    `json:"rel,omitempty"`
	Result *JobResult `json:"result,omitempty"`
}

// progressPoint is one residual-stream sample: the solver's 1-based
// iteration number and the relative residual it appended to History.
type progressPoint struct {
	Iter int     `json:"iter"`
	Rel  float64 `json:"rel"`
}

// job is the server-side state of one submitted solve.
type job struct {
	mu        sync.Mutex
	id        string
	spec      JobSpec
	state     JobState
	attempts  int
	errMsg    string
	submitted time.Time
	points    []progressPoint
	result    *JobResult
	done      chan struct{} // closed on the first terminal transition

	// cancelled is set by DELETE /v1/jobs/{id}; the worker observes it
	// before and during a solve. cancelFn, non-nil while an attempt is
	// in flight, aborts that attempt's context.
	cancelled bool
	cancelFn  context.CancelFunc
}

func newJob(id string, spec JobSpec, submitted time.Time) *job {
	return &job{id: id, spec: spec, state: StateQueued, submitted: submitted, done: make(chan struct{})}
}

// view snapshots the job. includeX keeps the solution vector, which
// only the solution endpoint and the spool want.
func (j *job) view(includeX bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.id, Spec: j.spec, State: j.state, Attempts: j.attempts,
		Error: j.errMsg, SubmittedAt: j.submitted,
	}
	if n := len(j.points); n > 0 {
		v.Iter, v.Rel = j.points[n-1].Iter, j.points[n-1].Rel
	}
	if j.result != nil {
		r := *j.result
		if !includeX {
			r.X = nil
		}
		v.Result = &r
	}
	return v
}

// setState transitions the job, closing done on the first terminal
// state. Terminal states are final: a transition out of one is refused,
// so a worker racing a cancellation can never resurrect a job. It
// reports whether the transition applied.
func (j *job) setState(s JobState) bool {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = s
	j.mu.Unlock()
	if s.terminal() {
		close(j.done)
	}
	return true
}

// requestCancel marks the job canceled by the client and aborts any
// in-flight attempt. It reports false when the job is already terminal
// (nothing to cancel).
func (j *job) requestCancel() bool {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return false
	}
	j.cancelled = true
	fn := j.cancelFn
	j.mu.Unlock()
	if fn != nil {
		fn()
	}
	return true
}

// armCancel installs the running attempt's abort hook. It reports false
// when cancellation was already requested — the attempt must not start.
func (j *job) armCancel(fn context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelled {
		return false
	}
	j.cancelFn = fn
	return true
}

// disarmCancel removes the attempt's abort hook once it finishes.
func (j *job) disarmCancel() {
	j.mu.Lock()
	j.cancelFn = nil
	j.mu.Unlock()
}

// cancelRequested reports whether a client asked for cancellation.
func (j *job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}

// addPoint records a live residual sample (the solver's Progress hook).
func (j *job) addPoint(iter int, rel float64) {
	j.mu.Lock()
	j.points = append(j.points, progressPoint{Iter: iter, Rel: rel})
	j.mu.Unlock()
}

// pointsSince returns a copy of the samples after index n and the
// job's state, read atomically — the stream endpoint's cursor read.
func (j *job) pointsSince(n int) ([]progressPoint, JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n >= len(j.points) {
		return nil, j.state
	}
	out := make([]progressPoint, len(j.points)-n)
	copy(out, j.points[n:])
	return out, j.state
}

// quarantineDir is the subdirectory of the spool that corrupt records
// are moved into instead of aborting startup or resuming from bad
// state. Nothing under it is ever read back; it exists for operators.
const quarantineDir = "quarantine"

// spool is the durable job store: one JSON record per job plus an
// optional checkpoint blob, both written atomically (tmp + rename) so a
// crash mid-write leaves the previous version intact. All I/O routes
// through the faultinject.FS seam so chaos tests can fail, tear, or
// ENOSPC any operation. A zero dir disables persistence.
type spool struct {
	dir string
	fs  faultinject.FS
	// onQuarantine, if non-nil, observes every quarantined file (the
	// server counts them into /metrics).
	onQuarantine func(name string, reason error)
}

func (sp spool) enabled() bool { return sp.dir != "" }

func (sp spool) jobPath(id string) string  { return filepath.Join(sp.dir, id+".json") }
func (sp spool) ckptPath(id string) string { return filepath.Join(sp.dir, id+".ckpt") }

func (sp spool) writeFile(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := sp.fs.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return sp.fs.Rename(tmp, path)
}

func (sp spool) writeJob(v JobView) error {
	if !sp.enabled() {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return sp.writeFile(sp.jobPath(v.ID), data)
}

func (sp spool) writeCkpt(id string, blob []byte) error {
	if !sp.enabled() {
		return fmt.Errorf("service: no spool directory configured")
	}
	return sp.writeFile(sp.ckptPath(id), blob)
}

// readCkpt returns the job's checkpoint blob, checksum-verified: a blob
// kernels.DecodeWSECheckpoint rejects (torn write, bit rot) is
// quarantined and nil is returned, so the job re-runs from its
// deterministic spec instead of resuming from corrupt state.
func (sp spool) readCkpt(id string) []byte {
	if !sp.enabled() {
		return nil
	}
	blob, err := sp.fs.ReadFile(sp.ckptPath(id))
	if err != nil {
		return nil
	}
	if _, err := kernels.DecodeWSECheckpoint(blob); err != nil {
		sp.quarantine(id+".ckpt", fmt.Errorf("checkpoint failed verification: %w", err))
		return nil
	}
	return blob
}

func (sp spool) removeCkpt(id string) {
	if sp.enabled() {
		sp.fs.Remove(sp.ckptPath(id))
	}
}

// quarantine moves a corrupt spool file into the quarantine
// subdirectory, logging and reporting it. A failed move leaves the file
// in place (it will be skipped again next startup).
func (sp spool) quarantine(name string, reason error) {
	dst := filepath.Join(sp.dir, quarantineDir)
	if err := sp.fs.MkdirAll(dst, 0o755); err == nil {
		if err := sp.fs.Rename(filepath.Join(sp.dir, name), filepath.Join(dst, name)); err != nil {
			log.Printf("service: spool: could not quarantine %s: %v", name, err)
		}
	}
	log.Printf("service: spool: quarantined %s: %v", name, reason)
	if sp.onQuarantine != nil {
		sp.onQuarantine(name, reason)
	}
}

// load scans the spool for job records, in ID order. Unreadable or
// corrupt records — torn JSON, a record whose ID contradicts its
// filename, an unknown state — are quarantined and skipped, never
// fatal: one bad blob must not take the whole spool down with it.
func (sp spool) load() ([]JobView, error) {
	if !sp.enabled() {
		return nil, nil
	}
	entries, err := sp.fs.ReadDir(sp.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var views []JobView
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := sp.fs.ReadFile(filepath.Join(sp.dir, name))
		if err != nil {
			sp.quarantine(name, fmt.Errorf("unreadable: %w", err))
			continue
		}
		var v JobView
		if err := json.Unmarshal(data, &v); err != nil {
			sp.quarantine(name, fmt.Errorf("corrupt JSON: %w", err))
			continue
		}
		if want := strings.TrimSuffix(name, ".json"); v.ID != want {
			sp.quarantine(name, fmt.Errorf("record ID %q contradicts filename", v.ID))
			continue
		}
		if !knownState(v.State) {
			sp.quarantine(name, fmt.Errorf("unknown state %q", v.State))
			continue
		}
		views = append(views, v)
	}
	return views, nil
}
