// Package service implements wsesimd, the solver-as-a-service layer: a
// persistent daemon owning a pool of warm, pre-built simulated machines
// behind an HTTP/JSON job API. Clients POST a JobSpec — a fully
// deterministic problem description — and get a job ID to poll or
// stream; the daemon schedules solves over a bounded worker pool,
// reuses machines across jobs through a keyed cache (fabric shape +
// depth + engine + wafer grid), spools every job durably, retries
// transient failures with backoff, and on SIGTERM checkpoints in-flight
// wafer solves so a restarted daemon resumes them bit-identically.
// Results are bit-identical to a direct core.Solve call — the cache and
// the crash path are invisible in the numbers (pinned by this package's
// tests and the warm-reuse tests in kernels and multiwafer).
//
// The robustness layer on top: jobs carry deadlines and can be canceled
// (DELETE /v1/jobs/{id}) — both unwind a running solve cooperatively at
// an iteration boundary, so the machine goes back to the warm cache in
// a reusable state. Spool recovery quarantines corrupt records instead
// of dying on them, a per-backend circuit breaker sheds load off a
// failing backend (optionally falling back to the host solve), and
// every spool write routes through a faultinject seam so chaos tests
// can prove no crash instant loses or double-completes a job.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// Config sizes the daemon.
type Config struct {
	// SpoolDir is the durable job store; empty disables persistence
	// (jobs and results live in memory only).
	SpoolDir string
	// Workers is the solve worker-pool size; default 4. Each worker runs
	// one job at a time, so this bounds concurrent simulations.
	Workers int
	// QueueDepth bounds the pending-job queue; default 256. Submissions
	// beyond it are rejected with 503.
	QueueDepth int
	// MaxIdleMachines bounds the warm-machine cache; default 8.
	MaxIdleMachines int
	// SuspendEvery is the checkpoint cadence (iterations) armed on every
	// wafer job so a draining daemon can suspend it at the next
	// boundary; default 4. Checkpoints are only written while draining.
	SuspendEvery int
	// MaxRetries is how many times a failed solve is re-queued before
	// the job fails for good; default 2.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt; default 100ms.
	RetryBackoff time.Duration
	// DefaultTTL caps a job's total lifetime (from submission) when its
	// spec carries no timeout_ms; 0 means no server-side deadline.
	DefaultTTL time.Duration
	// BreakerThreshold is how many consecutive genuine solve failures on
	// one backend trip its circuit breaker open; default 3.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped circuit stays open before
	// admitting a half-open probe; default 5s.
	BreakerCooldown time.Duration
	// MaxBody bounds the POST /v1/jobs request body in bytes; default
	// 1 MiB — a JobSpec is a few hundred bytes, anything near the limit
	// is not a job submission.
	MaxBody int64
	// FS is the filesystem the spool uses; nil means the real one. Chaos
	// tests (and wsesimd -inject-spool-faults) install a
	// faultinject.FaultFS.
	FS faultinject.FS
	// Crashes is the crash-point registry chaos tests arm to "kill" a
	// worker between two spool writes; nil — the default — never fires.
	Crashes *faultinject.Crashes
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxIdleMachines <= 0 {
		c.MaxIdleMachines = 8
	}
	if c.SuspendEvery <= 0 {
		c.SuspendEvery = 4
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	return c
}

// Server is the daemon: job registry, worker pool, machine cache,
// metrics and the HTTP API. Create with New, launch with Start, stop
// with Shutdown.
type Server struct {
	cfg     Config
	spool   spool
	cache   *machineCache
	metrics *metrics
	breaker *breaker
	crashes *faultinject.Crashes

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order, for GET /v1/jobs
	seq   int      // last issued job number

	queue    chan *job
	quit     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	draining atomic.Bool
	running  atomic.Int64

	// injectFault, when non-nil, replaces the solve for matching
	// attempts — the retry path's test seam.
	injectFault func(spec JobSpec, attempt int) error
	// testIterHook, when non-nil, runs inside every solve's progress
	// callback — the shutdown test's seam for holding a solve
	// mid-flight until draining starts.
	testIterHook func(j *job, iter int)
}

// New builds a server and recovers the spool: finished jobs come back
// servable, interrupted ones (queued, running or suspended at crash
// time) are re-queued — suspended wafer jobs resume from their
// checkpoint blob, the rest re-run from their deterministic spec.
// Corrupt spool records are quarantined and skipped, never fatal. Start
// must be called to begin solving.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	fs := cfg.FS
	if fs == nil {
		fs = faultinject.OS
	}
	s := &Server{
		cfg:     cfg,
		spool:   spool{dir: cfg.SpoolDir, fs: fs},
		cache:   newMachineCache(cfg.MaxIdleMachines),
		metrics: newMetrics(),
		breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		crashes: cfg.Crashes,
		jobs:    make(map[string]*job),
		queue:   make(chan *job, cfg.QueueDepth),
		quit:    make(chan struct{}),
	}
	s.spool.onQuarantine = func(string, error) { s.metrics.quarantine() }
	if s.spool.enabled() {
		if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
			return nil, err
		}
	}
	views, err := s.spool.load()
	if err != nil {
		return nil, err
	}
	for _, v := range views {
		j := newJob(v.ID, v.Spec, v.SubmittedAt)
		j.attempts = v.Attempts
		j.errMsg = v.Error
		j.result = v.Result
		var n int
		if _, err := fmt.Sscanf(v.ID, "j%06d", &n); err == nil && n > s.seq {
			s.seq = n
		}
		s.jobs[v.ID] = j
		s.order = append(s.order, v.ID)
		if v.State.terminal() {
			j.state = v.State
			close(j.done)
			// A crash between the terminal write and the checkpoint
			// cleanup leaves a stale blob behind; sweep it now.
			s.spool.removeCkpt(v.ID)
			continue
		}
		// Interrupted mid-flight: back to the queue. The spec is
		// deterministic and any checkpoint blob is picked up by runJob,
		// so nothing is lost.
		j.state = StateQueued
		if err := s.spool.writeJob(j.view(true)); err != nil {
			return nil, err
		}
		s.queue <- j
	}
	return s, nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Shutdown drains the daemon: no new submissions, queued jobs stay
// spooled, running wafer solves suspend at their next checkpoint
// boundary, and the machine cache is released. It returns when every
// worker has parked or the context expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.stopOnce.Do(func() { close(s.quit) })
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.cache.close()
	return err
}

// CacheStats exposes the machine cache's lifetime hit/miss counters
// (also served on /metrics).
func (s *Server) CacheStats() (hits, misses int64) { return s.cache.stats() }

// Submit registers and enqueues a job, returning its status view.
func (s *Server) Submit(spec JobSpec) (JobView, error) {
	spec = spec.withDefaults()
	if _, err := spec.Options(); err != nil {
		return JobView{}, err
	}
	if s.draining.Load() {
		return JobView{}, errDraining
	}
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("j%06d", s.seq)
	j := newJob(id, spec, time.Now())
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	if err := s.spool.writeJob(j.view(true)); err != nil {
		return JobView{}, err
	}
	select {
	case s.queue <- j:
	default:
		j.errMsg = "queue full"
		j.setState(StateFailed)
		s.spool.writeJob(j.view(true))
		return JobView{}, errQueueFull
	}
	s.metrics.submitted(spec.Backend)
	return j.view(false), nil
}

// Cancel requests cancellation of a job. A job no worker holds (queued,
// suspended) is finalized immediately; a running job's solve context is
// canceled and its worker finalizes at the next iteration boundary —
// the returned view may still say "running" in that window.
func (s *Server) Cancel(id string) (JobView, error) {
	j := s.getJob(id)
	if j == nil {
		return JobView{}, errNoSuchJob
	}
	if !j.requestCancel() {
		return j.view(false), errJobTerminal
	}
	j.mu.Lock()
	running := j.state == StateRunning
	spec := j.spec
	j.mu.Unlock()
	if !running {
		if applied, _ := s.transition(j, StateCanceled, "canceled by client"); applied {
			s.spool.removeCkpt(j.id)
			s.metrics.canceled(spec.Backend)
		}
	}
	return j.view(false), nil
}

var (
	errDraining    = errors.New("service: server is shutting down")
	errQueueFull   = errors.New("service: job queue is full")
	errBreakerOpen = errors.New("service: backend circuit breaker is open")
	errNoSuchJob   = errors.New("service: no such job")
	errJobTerminal = errors.New("service: job already in a terminal state")
)

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		// Prefer quit so a draining worker parks even when the queue
		// still has jobs (they stay spooled for the next start).
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// jobDeadline resolves a job's absolute deadline: the spec's timeout_ms
// when set, else the server's default TTL. Measured from submission
// time, so a deadline survives daemon restarts — a job cannot dodge its
// TTL by crashing the process.
func (s *Server) jobDeadline(spec JobSpec, submitted time.Time) (time.Time, bool) {
	if spec.TimeoutMS > 0 {
		return submitted.Add(time.Duration(spec.TimeoutMS) * time.Millisecond), true
	}
	if s.cfg.DefaultTTL > 0 {
		return submitted.Add(s.cfg.DefaultTTL), true
	}
	return time.Time{}, false
}

// transition moves the job to state and durably spools the new record,
// firing any armed crash points "run.before-<state>" and
// "run.after-<state>" around the write. crashed reports that an armed
// point fired — the caller must abandon the job immediately, exactly as
// if the process had died at that instant, leaving recovery to the next
// New over the same spool. applied is false when the job was already
// terminal (a racing cancellation won); the caller skips its
// bookkeeping so nothing is double-counted.
func (s *Server) transition(j *job, state JobState, errMsg string) (applied, crashed bool) {
	if s.crashes.Hit("run.before-" + string(state)) {
		return false, true
	}
	if state != StateRunning {
		j.mu.Lock()
		j.errMsg = errMsg
		j.mu.Unlock()
	}
	applied = j.setState(state)
	s.spool.writeJob(j.view(true))
	if s.crashes.Hit("run.after-" + string(state)) {
		return applied, true
	}
	return applied, false
}

// runJob executes one attempt of a job and routes the outcome: done,
// canceled, expired, suspended (shutdown checkpoint), retry with
// backoff, or failed.
func (s *Server) runJob(j *job) {
	s.running.Add(1)
	defer s.running.Add(-1)

	j.mu.Lock()
	if j.state.terminal() {
		// Canceled or expired while sitting in the queue channel.
		j.mu.Unlock()
		return
	}
	spec := j.spec
	submitted := j.submitted
	lastErr := j.errMsg
	j.mu.Unlock()

	// Cancellation and expiry checks come before the attempt counter: a
	// job that never ran ends with zero attempts. A DELETE that landed
	// before any worker picked the job up finalizes here.
	if j.cancelRequested() {
		if applied, _ := s.transition(j, StateCanceled, "canceled by client"); applied {
			s.spool.removeCkpt(j.id)
			s.metrics.canceled(spec.Backend)
		}
		return
	}

	deadline, hasDeadline := s.jobDeadline(spec, submitted)
	if hasDeadline && !time.Now().Before(deadline) {
		if applied, _ := s.transition(j, StateExpired, "deadline expired before the job ran"); applied {
			s.spool.removeCkpt(j.id)
			s.metrics.expired(spec.Backend)
		}
		return
	}

	j.mu.Lock()
	j.attempts++
	attempt := j.attempts
	j.points = nil // a retry restarts the residual stream
	j.mu.Unlock()

	// Poison guard: attempts persist in the spool, so a job that keeps
	// killing the daemon mid-solve comes back with its count intact and
	// lands here once the budget is gone — terminally failed instead of
	// getting another shot at taking the process down.
	if attempt > s.cfg.MaxRetries+1 {
		msg := fmt.Sprintf("poison job: retry budget exhausted after %d attempts", attempt-1)
		if lastErr != "" {
			msg += ": last error: " + lastErr
		}
		if applied, _ := s.transition(j, StateFailed, msg); applied {
			s.spool.removeCkpt(j.id)
			s.metrics.failed(spec.Backend)
		}
		return
	}

	if _, crashed := s.transition(j, StateRunning, ""); crashed {
		return
	}

	ctx := context.Background()
	var cancel context.CancelFunc
	if hasDeadline {
		ctx, cancel = context.WithDeadline(ctx, deadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	if !j.armCancel(cancel) {
		// Cancellation raced the running transition.
		if applied, _ := s.transition(j, StateCanceled, "canceled by client"); applied {
			s.spool.removeCkpt(j.id)
			s.metrics.canceled(spec.Backend)
		}
		return
	}

	start := time.Now()
	res, fellBack, err := s.solveAttempt(ctx, j, spec, attempt)
	j.disarmCancel()

	switch {
	case err == nil:
		if fellBack {
			s.metrics.fallback(spec.Backend)
		} else {
			s.breaker.success(spec.Backend)
		}
		r := resultFrom(res)
		r.Fallback = fellBack
		j.mu.Lock()
		if !j.state.terminal() {
			j.result = r
			j.errMsg = ""
			if len(j.points) == 0 {
				// Host backends have no live progress hook; backfill the
				// stream from the final history.
				for i, rel := range res.History {
					j.points = append(j.points, progressPoint{Iter: i + 1, Rel: rel})
				}
			}
		}
		j.mu.Unlock()
		applied, crashed := s.transition(j, StateDone, "")
		if crashed {
			return
		}
		if applied {
			s.spool.removeCkpt(j.id)
			s.metrics.completed(spec.Backend, time.Since(start))
		}

	case errors.Is(err, errSuspended):
		// The checkpoint blob is already spooled (the callback wrote it
		// before returning the sentinel).
		applied, crashed := s.transition(j, StateSuspended, "")
		if crashed {
			return
		}
		if applied {
			s.metrics.suspended(spec.Backend)
		}

	case errors.Is(err, context.DeadlineExceeded):
		applied, crashed := s.transition(j, StateExpired, err.Error())
		if crashed {
			return
		}
		if applied {
			s.spool.removeCkpt(j.id)
			s.metrics.expired(spec.Backend)
		}

	case errors.Is(err, context.Canceled) || j.cancelRequested():
		applied, crashed := s.transition(j, StateCanceled, "canceled by client")
		if crashed {
			return
		}
		if applied {
			s.spool.removeCkpt(j.id)
			s.metrics.canceled(spec.Backend)
		}

	case attempt <= s.cfg.MaxRetries:
		// An open breaker consumed the attempt but exercised nothing, so
		// it is not a backend failure; everything else counts toward the
		// next trip.
		if !errors.Is(err, errBreakerOpen) && !fellBack {
			if s.breaker.failure(spec.Backend) {
				s.metrics.breakerTripped(spec.Backend)
			}
		}
		applied, crashed := s.transition(j, StateQueued, err.Error())
		if crashed {
			return
		}
		if !applied {
			return
		}
		s.metrics.retried(spec.Backend)
		backoff := s.cfg.RetryBackoff << (attempt - 1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTimer(backoff)
			defer t.Stop()
			select {
			case <-s.quit:
				// Stays queued in the spool; the next start re-runs it.
			case <-t.C:
				select {
				case s.queue <- j:
				case <-s.quit:
				}
			}
		}()

	default:
		if !errors.Is(err, errBreakerOpen) && !fellBack {
			if s.breaker.failure(spec.Backend) {
				s.metrics.breakerTripped(spec.Backend)
			}
		}
		applied, crashed := s.transition(j, StateFailed, err.Error())
		if crashed {
			return
		}
		if applied {
			s.spool.removeCkpt(j.id)
			s.metrics.failed(spec.Backend)
		}
	}
}

// solveAttempt builds the problem and runs one solve under the
// attempt's context, arming the shutdown-checkpoint hook on wafer jobs
// and resuming from a spooled checkpoint when one exists. When the
// backend's circuit breaker is open, a spec that allows it degrades to
// the host fallback solve (fellBack true); otherwise the attempt is
// refused with errBreakerOpen.
func (s *Server) solveAttempt(ctx context.Context, j *job, spec JobSpec, attempt int) (res core.Result, fellBack bool, err error) {
	o, err := spec.Options()
	if err != nil {
		return core.Result{}, false, err
	}
	p, err := spec.BuildProblem()
	if err != nil {
		return core.Result{}, false, err
	}
	h := solveHooks{progress: j.addPoint}
	if s.testIterHook != nil {
		h.progress = func(iter int, rel float64) {
			j.addPoint(iter, rel)
			s.testIterHook(j, iter)
		}
	}
	// The breaker gate comes before the fault seam: an open circuit
	// refuses the attempt without touching the (injectable) backend, so
	// fallback jobs keep completing while the backend stays broken.
	if !s.breaker.allow(spec.Backend) {
		if spec.AllowFallback {
			res, err := s.runFallback(ctx, p, o, h)
			return res, true, err
		}
		return core.Result{}, false, errBreakerOpen
	}
	if s.injectFault != nil {
		if err := s.injectFault(spec, attempt); err != nil {
			return core.Result{}, false, err
		}
	}
	if o.Backend == core.Wafer && s.spool.enabled() {
		h.checkpointEvery = s.cfg.SuspendEvery
		h.checkpoint = func(blob []byte) error {
			if !s.draining.Load() {
				return nil
			}
			if err := s.spool.writeCkpt(j.id, blob); err != nil {
				return err
			}
			return errSuspended
		}
		h.resume = s.spool.readCkpt(j.id)
	}
	res, err = s.runSolve(ctx, p, o, h)
	return res, false, err
}

func (s *Server) getJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Handler returns the HTTP API:
//
//	POST   /v1/jobs               submit a JobSpec, 202 + job view
//	GET    /v1/jobs               list jobs (submission order)
//	GET    /v1/jobs/{id}          job status + live progress
//	DELETE /v1/jobs/{id}          cancel a job (409 once terminal)
//	GET    /v1/jobs/{id}/solution finished job's result incl. solution
//	GET    /v1/jobs/{id}/stream   NDJSON residual stream, ends on terminal state
//	GET    /metrics               Prometheus text metrics
//	GET    /healthz               liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/solution", s.handleSolution)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("service: job spec exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad job spec: %w", err))
		return
	}
	v, err := s.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, v)
	case errors.Is(err, errDraining) || errors.Is(err, errQueueFull):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	v, err := s.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, v)
	case errors.Is(err, errNoSuchJob):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, errJobTerminal):
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].view(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errNoSuchJob)
		return
	}
	writeJSON(w, http.StatusOK, j.view(false))
}

func (s *Server) handleSolution(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errNoSuchJob)
		return
	}
	v := j.view(true)
	if v.State != StateDone {
		writeError(w, http.StatusConflict, fmt.Errorf("service: job is %s, solution available once done", v.State))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleStream writes newline-delimited JSON: one
// {"iter":N,"rel":R} line per residual-history entry (live for
// simulated backends, a final burst for host backends), then a
// terminal {"state":...} line.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errNoSuchJob)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		points, state := j.pointsSince(sent)
		for _, pt := range points {
			enc.Encode(pt)
		}
		sent += len(points)
		if len(points) > 0 && flusher != nil {
			flusher.Flush()
		}
		if state.terminal() {
			v := j.view(false)
			final := map[string]any{"state": v.State}
			if v.Result != nil {
				final["iterations"] = v.Result.Iterations
				final["converged"] = v.Result.Converged
				final["true_residual"] = v.Result.TrueResidual
			}
			if v.Error != "" {
				final["error"] = v.Error
			}
			enc.Encode(final)
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, len(s.queue), int(s.running.Load()), hits, misses)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}
