// Package service implements wsesimd, the solver-as-a-service layer: a
// persistent daemon owning a pool of warm, pre-built simulated machines
// behind an HTTP/JSON job API. Clients POST a JobSpec — a fully
// deterministic problem description — and get a job ID to poll or
// stream; the daemon schedules solves over a bounded worker pool,
// reuses machines across jobs through a keyed cache (fabric shape +
// depth + engine + wafer grid), spools every job durably, retries
// transient failures with backoff, and on SIGTERM checkpoints in-flight
// wafer solves so a restarted daemon resumes them bit-identically.
// Results are bit-identical to a direct core.Solve call — the cache and
// the crash path are invisible in the numbers (pinned by this package's
// tests and the warm-reuse tests in kernels and multiwafer).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Config sizes the daemon.
type Config struct {
	// SpoolDir is the durable job store; empty disables persistence
	// (jobs and results live in memory only).
	SpoolDir string
	// Workers is the solve worker-pool size; default 4. Each worker runs
	// one job at a time, so this bounds concurrent simulations.
	Workers int
	// QueueDepth bounds the pending-job queue; default 256. Submissions
	// beyond it are rejected with 503.
	QueueDepth int
	// MaxIdleMachines bounds the warm-machine cache; default 8.
	MaxIdleMachines int
	// SuspendEvery is the checkpoint cadence (iterations) armed on every
	// wafer job so a draining daemon can suspend it at the next
	// boundary; default 4. Checkpoints are only written while draining.
	SuspendEvery int
	// MaxRetries is how many times a failed solve is re-queued before
	// the job fails for good; default 2.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt; default 100ms.
	RetryBackoff time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxIdleMachines <= 0 {
		c.MaxIdleMachines = 8
	}
	if c.SuspendEvery <= 0 {
		c.SuspendEvery = 4
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	return c
}

// Server is the daemon: job registry, worker pool, machine cache,
// metrics and the HTTP API. Create with New, launch with Start, stop
// with Shutdown.
type Server struct {
	cfg     Config
	spool   spool
	cache   *machineCache
	metrics *metrics

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order, for GET /v1/jobs
	seq   int      // last issued job number

	queue    chan *job
	quit     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	draining atomic.Bool
	running  atomic.Int64

	// injectFault, when non-nil, replaces the solve for matching
	// attempts — the retry path's test seam.
	injectFault func(spec JobSpec, attempt int) error
	// testIterHook, when non-nil, runs inside every solve's progress
	// callback — the shutdown test's seam for holding a solve
	// mid-flight until draining starts.
	testIterHook func(j *job, iter int)
}

// New builds a server and recovers the spool: finished jobs come back
// servable, interrupted ones (queued, running or suspended at crash
// time) are re-queued — suspended wafer jobs resume from their
// checkpoint blob, the rest re-run from their deterministic spec. Start
// must be called to begin solving.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		spool:   spool{dir: cfg.SpoolDir},
		cache:   newMachineCache(cfg.MaxIdleMachines),
		metrics: newMetrics(),
		jobs:    make(map[string]*job),
		queue:   make(chan *job, cfg.QueueDepth),
		quit:    make(chan struct{}),
	}
	if s.spool.enabled() {
		if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
			return nil, err
		}
	}
	views, err := s.spool.load()
	if err != nil {
		return nil, err
	}
	for _, v := range views {
		j := newJob(v.ID, v.Spec, v.SubmittedAt)
		j.attempts = v.Attempts
		j.errMsg = v.Error
		j.result = v.Result
		var n int
		if _, err := fmt.Sscanf(v.ID, "j%06d", &n); err == nil && n > s.seq {
			s.seq = n
		}
		s.jobs[v.ID] = j
		s.order = append(s.order, v.ID)
		if v.State.terminal() {
			j.state = v.State
			close(j.done)
			continue
		}
		// Interrupted mid-flight: back to the queue. The spec is
		// deterministic and any checkpoint blob is picked up by runJob,
		// so nothing is lost.
		j.state = StateQueued
		if err := s.spool.writeJob(j.view(true)); err != nil {
			return nil, err
		}
		s.queue <- j
	}
	return s, nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Shutdown drains the daemon: no new submissions, queued jobs stay
// spooled, running wafer solves suspend at their next checkpoint
// boundary, and the machine cache is released. It returns when every
// worker has parked or the context expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.stopOnce.Do(func() { close(s.quit) })
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.cache.close()
	return err
}

// CacheStats exposes the machine cache's lifetime hit/miss counters
// (also served on /metrics).
func (s *Server) CacheStats() (hits, misses int64) { return s.cache.stats() }

// Submit registers and enqueues a job, returning its status view.
func (s *Server) Submit(spec JobSpec) (JobView, error) {
	spec = spec.withDefaults()
	if _, err := spec.Options(); err != nil {
		return JobView{}, err
	}
	if s.draining.Load() {
		return JobView{}, errDraining
	}
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("j%06d", s.seq)
	j := newJob(id, spec, time.Now())
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	if err := s.spool.writeJob(j.view(true)); err != nil {
		return JobView{}, err
	}
	select {
	case s.queue <- j:
	default:
		j.errMsg = "queue full"
		j.setState(StateFailed)
		s.spool.writeJob(j.view(true))
		return JobView{}, errQueueFull
	}
	s.metrics.submitted(spec.Backend)
	return j.view(false), nil
}

var (
	errDraining  = errors.New("service: server is shutting down")
	errQueueFull = errors.New("service: job queue is full")
)

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		// Prefer quit so a draining worker parks even when the queue
		// still has jobs (they stay spooled for the next start).
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one attempt of a job and routes the outcome: done,
// suspended (shutdown checkpoint), retry with backoff, or failed.
func (s *Server) runJob(j *job) {
	s.running.Add(1)
	defer s.running.Add(-1)

	j.mu.Lock()
	j.attempts++
	attempt := j.attempts
	spec := j.spec
	j.points = nil // a retry restarts the residual stream
	j.mu.Unlock()
	j.setState(StateRunning)
	s.spool.writeJob(j.view(true))

	start := time.Now()
	res, err := s.solveAttempt(j, spec, attempt)
	switch {
	case err == nil:
		j.mu.Lock()
		j.result = resultFrom(res)
		j.errMsg = ""
		if len(j.points) == 0 {
			// Host backends have no live progress hook; backfill the
			// stream from the final history.
			for i, rel := range res.History {
				j.points = append(j.points, progressPoint{Iter: i + 1, Rel: rel})
			}
		}
		j.mu.Unlock()
		j.setState(StateDone)
		s.spool.writeJob(j.view(true))
		s.spool.removeCkpt(j.id)
		s.metrics.completed(spec.Backend, time.Since(start))

	case errors.Is(err, errSuspended):
		// The checkpoint blob is already spooled (the callback wrote it
		// before returning the sentinel).
		j.setState(StateSuspended)
		s.spool.writeJob(j.view(true))
		s.metrics.suspended(spec.Backend)

	case attempt <= s.cfg.MaxRetries:
		j.mu.Lock()
		j.errMsg = err.Error()
		j.mu.Unlock()
		j.setState(StateQueued)
		s.spool.writeJob(j.view(true))
		s.metrics.retried(spec.Backend)
		backoff := s.cfg.RetryBackoff << (attempt - 1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTimer(backoff)
			defer t.Stop()
			select {
			case <-s.quit:
				// Stays queued in the spool; the next start re-runs it.
			case <-t.C:
				select {
				case s.queue <- j:
				case <-s.quit:
				}
			}
		}()

	default:
		j.mu.Lock()
		j.errMsg = err.Error()
		j.mu.Unlock()
		j.setState(StateFailed)
		s.spool.writeJob(j.view(true))
		s.metrics.failed(spec.Backend)
	}
}

// solveAttempt builds the problem and runs one solve, arming the
// shutdown-checkpoint hook on wafer jobs and resuming from a spooled
// checkpoint when one exists.
func (s *Server) solveAttempt(j *job, spec JobSpec, attempt int) (core.Result, error) {
	if s.injectFault != nil {
		if err := s.injectFault(spec, attempt); err != nil {
			return core.Result{}, err
		}
	}
	o, err := spec.Options()
	if err != nil {
		return core.Result{}, err
	}
	p, err := spec.BuildProblem()
	if err != nil {
		return core.Result{}, err
	}
	h := solveHooks{progress: j.addPoint}
	if s.testIterHook != nil {
		h.progress = func(iter int, rel float64) {
			j.addPoint(iter, rel)
			s.testIterHook(j, iter)
		}
	}
	if o.Backend == core.Wafer && s.spool.enabled() {
		h.checkpointEvery = s.cfg.SuspendEvery
		h.checkpoint = func(blob []byte) error {
			if !s.draining.Load() {
				return nil
			}
			if err := s.spool.writeCkpt(j.id, blob); err != nil {
				return err
			}
			return errSuspended
		}
		h.resume = s.spool.readCkpt(j.id)
	}
	return s.runSolve(p, o, h)
}

func (s *Server) getJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Handler returns the HTTP API:
//
//	POST /v1/jobs               submit a JobSpec, 202 + job view
//	GET  /v1/jobs               list jobs (submission order)
//	GET  /v1/jobs/{id}          job status + live progress
//	GET  /v1/jobs/{id}/solution finished job's result incl. solution
//	GET  /v1/jobs/{id}/stream   NDJSON residual stream, ends on terminal state
//	GET  /metrics               Prometheus text metrics
//	GET  /healthz               liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/solution", s.handleSolution)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad job spec: %w", err))
		return
	}
	v, err := s.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, v)
	case errors.Is(err, errDraining) || errors.Is(err, errQueueFull):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].view(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.view(false))
}

func (s *Server) handleSolution(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no such job"))
		return
	}
	v := j.view(true)
	if v.State != StateDone {
		writeError(w, http.StatusConflict, fmt.Errorf("service: job is %s, solution available once done", v.State))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleStream writes newline-delimited JSON: one
// {"iter":N,"rel":R} line per residual-history entry (live for
// simulated backends, a final burst for host backends), then a
// terminal {"state":...} line.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no such job"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		points, state := j.pointsSince(sent)
		for _, pt := range points {
			enc.Encode(pt)
		}
		sent += len(points)
		if len(points) > 0 && flusher != nil {
			flusher.Flush()
		}
		if state.terminal() {
			v := j.view(false)
			final := map[string]any{"state": v.State}
			if v.Result != nil {
				final["iterations"] = v.Result.Iterations
				final["converged"] = v.Result.Converged
				final["true_residual"] = v.Result.TrueResidual
			}
			if v.Error != "" {
				final["error"] = v.Error
			}
			enc.Encode(final)
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, len(s.queue), int(s.running.Load()), hits, misses)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}
