package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServiceCancelQueued cancels a job no worker has touched: DELETE
// finalizes it immediately, the terminal state is durable, a second
// DELETE conflicts, and a later worker never runs it.
func TestServiceCancelQueued(t *testing.T) {
	spoolDir := t.TempDir()
	s, err := New(Config{Workers: 1, SpoolDir: spoolDir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, err := s.Submit(JobSpec{Problem: "poisson", NX: 4, NY: 4, NZ: 4, Backend: "local", MaxIter: 5})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var got JobView
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || got.State != StateCanceled {
		t.Fatalf("DELETE queued job: status %d state %s, want 200 %s", resp.StatusCode, got.State, StateCanceled)
	}

	// The cancellation is durable and final.
	data, err := os.ReadFile(filepath.Join(spoolDir, v.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var spooled JobView
	if err := json.Unmarshal(data, &spooled); err != nil {
		t.Fatal(err)
	}
	if spooled.State != StateCanceled {
		t.Errorf("spooled state %s, want %s", spooled.State, StateCanceled)
	}
	resp2, _ := http.DefaultClient.Do(req)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("second DELETE: status %d, want 409", resp2.StatusCode)
	}
	if req404, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j999999", nil); true {
		resp3, _ := http.DefaultClient.Do(req404)
		resp3.Body.Close()
		if resp3.StatusCode != http.StatusNotFound {
			t.Errorf("DELETE unknown job: status %d, want 404", resp3.StatusCode)
		}
	}

	// A worker starting later skips the canceled job.
	s.Start()
	defer shutdown(t, s)
	time.Sleep(50 * time.Millisecond)
	if final := s.getJob(v.ID).view(false); final.State != StateCanceled || final.Attempts != 0 {
		t.Errorf("after start: state %s attempts %d, want canceled with 0 attempts", final.State, final.Attempts)
	}
}

// TestServiceCancelRunning cancels mid-solve on the simulated backends:
// the solve unwinds at an iteration boundary, the job lands in the
// distinct canceled state, and — the machine-consistency half — the
// machine goes back to the warm cache and the next same-shape job reuses
// it to a bit-identical result.
func TestServiceCancelRunning(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec JobSpec
	}{
		{"wafer", JobSpec{Problem: "momentum", NX: 4, NY: 4, NZ: 16, Backend: "wafer", MaxIter: 40}},
		{"multiwafer", JobSpec{Problem: "momentum", NX: 6, NY: 6, NZ: 8, Backend: "multiwafer", Grid: "2x1", MaxIter: 40}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(Config{Workers: 1, SpoolDir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			s.testIterHook = func(j *job, iter int) {
				if iter == 2 && !j.cancelRequested() {
					s.Cancel(j.id)
				}
			}
			s.Start()
			defer shutdown(t, s)

			v, err := s.Submit(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			final := waitTerminal(t, s, v.ID, 120*time.Second)
			if final.State != StateCanceled {
				t.Fatalf("state %s (error %q), want %s", final.State, final.Error, StateCanceled)
			}
			if final.Result != nil {
				t.Errorf("canceled job carries a result")
			}

			// The machine the canceled solve was holding is back in the
			// cache and still produces correct bits.
			s.testIterHook = nil
			v2, err := s.Submit(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			final2 := waitTerminal(t, s, v2.ID, 120*time.Second)
			if final2.State != StateDone {
				t.Fatalf("post-cancel job: state %s, error %q", final2.State, final2.Error)
			}
			assertBitIdentical(t, "post-cancel reuse", final2.Result, directSolve(t, tc.spec))
			if hits, misses := s.CacheStats(); hits < 1 {
				t.Errorf("cache: %d hits / %d misses, want the post-cancel job to reuse the canceled job's machine", hits, misses)
			}
		})
	}
}

// TestServiceDeadline pins the TTL semantics: a spec timeout_ms expires
// the job — in the distinct "expired" terminal state, not canceled or
// failed — whether the deadline passes in the queue or mid-solve, and
// the server's DefaultTTL applies when the spec has none.
func TestServiceDeadline(t *testing.T) {
	t.Run("in-queue", func(t *testing.T) {
		s, err := New(Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		v, err := s.Submit(JobSpec{Problem: "poisson", NX: 4, NY: 4, NZ: 4, Backend: "local", MaxIter: 5, TimeoutMS: 1})
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond) // let the deadline pass before any worker exists
		s.Start()
		defer shutdown(t, s)
		final := waitTerminal(t, s, v.ID, 30*time.Second)
		if final.State != StateExpired {
			t.Fatalf("state %s, want %s", final.State, StateExpired)
		}
		if final.Attempts != 0 || final.Result != nil {
			t.Errorf("expired-in-queue job ran: attempts %d, result %v", final.Attempts, final.Result)
		}
		var buf strings.Builder
		s.metrics.write(&buf, 0, 0, 0, 0)
		if !strings.Contains(buf.String(), `wsesimd_jobs_expired_total{backend="local"} 1`) {
			t.Errorf("/metrics does not count the expiry:\n%s", buf.String())
		}
	})

	t.Run("mid-solve", func(t *testing.T) {
		s, err := New(Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Hold every iteration long enough that the deadline lands
		// mid-solve, then check the solve unwound at a boundary.
		s.testIterHook = func(*job, int) { time.Sleep(20 * time.Millisecond) }
		s.Start()
		defer shutdown(t, s)
		v, err := s.Submit(JobSpec{Problem: "momentum", NX: 4, NY: 4, NZ: 16, Backend: "wafer", MaxIter: 200, TimeoutMS: 30})
		if err != nil {
			t.Fatal(err)
		}
		final := waitTerminal(t, s, v.ID, 60*time.Second)
		if final.State != StateExpired {
			t.Fatalf("state %s (error %q), want %s", final.State, final.Error, StateExpired)
		}
		if !strings.Contains(final.Error, "deadline") {
			t.Errorf("error %q does not mention the deadline", final.Error)
		}
	})

	t.Run("default-ttl", func(t *testing.T) {
		s, err := New(Config{Workers: 1, DefaultTTL: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		v, err := s.Submit(JobSpec{Problem: "poisson", NX: 4, NY: 4, NZ: 4, Backend: "local", MaxIter: 5})
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
		s.Start()
		defer shutdown(t, s)
		final := waitTerminal(t, s, v.ID, 30*time.Second)
		if final.State != StateExpired {
			t.Fatalf("state %s, want %s", final.State, StateExpired)
		}
	})
}

// TestServiceBreakerFallback drives a backend into repeated failure:
// the circuit trips at the threshold, jobs that allow it degrade to the
// host fallback (bit-identical for the multiwafer backend), jobs that
// don't fail with the breaker-open error, and after the cooldown a
// half-open probe closes the circuit again.
func TestServiceBreakerFallback(t *testing.T) {
	s, err := New(Config{
		Workers: 1, MaxRetries: -1, // no retries: each failure is terminal
		BreakerThreshold: 2, BreakerCooldown: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	broken := true
	s.injectFault = func(spec JobSpec, attempt int) error {
		if broken && spec.Backend == "multiwafer" {
			return errors.New("synthetic backend outage")
		}
		return nil
	}
	s.Start()
	defer shutdown(t, s)

	mwSpec := JobSpec{Problem: "momentum", NX: 6, NY: 6, NZ: 8, Backend: "multiwafer", Grid: "2x1", MaxIter: 4}
	submitWait := func(spec JobSpec) JobView {
		t.Helper()
		v, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		return waitTerminal(t, s, v.ID, 120*time.Second)
	}

	// Two consecutive failures trip the circuit.
	for i := 0; i < 2; i++ {
		if final := submitWait(mwSpec); final.State != StateFailed {
			t.Fatalf("outage job %d: state %s, want failed", i, final.State)
		}
	}
	if !s.breaker.open("multiwafer") {
		t.Fatal("breaker not open after two consecutive failures")
	}

	// Open circuit + allow_fallback: the job completes on the host,
	// bit-identical to the simulated solve, marked as a fallback.
	fb := mwSpec
	fb.AllowFallback = true
	final := submitWait(fb)
	if final.State != StateDone {
		t.Fatalf("fallback job: state %s, error %q", final.State, final.Error)
	}
	if final.Result == nil || !final.Result.Fallback {
		t.Fatal("fallback result not marked Fallback")
	}
	if got := final.Result.Telemetry.Backend; got != "local" {
		t.Errorf("fallback telemetry backend %q, want local", got)
	}
	assertBitIdentical(t, "fallback vs multiwafer", final.Result, directSolve(t, mwSpec))

	// Open circuit without fallback: refused up front, never solved.
	if final := submitWait(mwSpec); final.State != StateFailed || !strings.Contains(final.Error, "circuit breaker") {
		t.Fatalf("no-fallback job under open breaker: state %s error %q", final.State, final.Error)
	}

	var buf strings.Builder
	s.metrics.write(&buf, 0, 0, 0, 0)
	for _, want := range []string{
		`wsesimd_breaker_trips_total{backend="multiwafer"} 1`,
		`wsesimd_fallback_solves_total{backend="multiwafer"} 1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q:\n%s", want, buf.String())
		}
	}

	// Backend heals; after the cooldown the half-open probe succeeds and
	// the circuit closes.
	broken = false
	time.Sleep(250 * time.Millisecond)
	if final := submitWait(mwSpec); final.State != StateDone {
		t.Fatalf("probe job: state %s, error %q", final.State, final.Error)
	}
	if s.breaker.open("multiwafer") {
		t.Error("breaker still open after a successful probe")
	}
}

// TestBreakerHalfOpen unit-tests the breaker state machine on a fake
// clock: trip at the threshold, refuse while open, admit exactly one
// probe after the cooldown, re-open on probe failure.
func TestBreakerHalfOpen(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(2, time.Minute)
	b.now = func() time.Time { return now }

	if !b.allow("wafer") {
		t.Fatal("fresh breaker refuses")
	}
	if b.failure("wafer") {
		t.Fatal("first failure tripped below threshold")
	}
	if !b.failure("wafer") {
		t.Fatal("second failure did not trip")
	}
	if b.allow("wafer") {
		t.Fatal("open breaker admitted an attempt")
	}
	if b.allow("cluster") != true {
		t.Fatal("breaker state leaked across backends")
	}

	// Cooldown elapses: exactly one probe goes through.
	now = now.Add(2 * time.Minute)
	if !b.allow("wafer") {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.allow("wafer") {
		t.Fatal("second concurrent probe admitted")
	}
	// The probe fails: immediate re-open, one more trip.
	if !b.failure("wafer") {
		t.Fatal("failed probe did not re-trip")
	}
	if b.allow("wafer") {
		t.Fatal("re-opened breaker admitted an attempt")
	}
	// Next probe succeeds: circuit closes fully.
	now = now.Add(2 * time.Minute)
	if !b.allow("wafer") {
		t.Fatal("second probe refused")
	}
	b.success("wafer")
	if !b.allow("wafer") || b.open("wafer") {
		t.Fatal("breaker not closed after a successful probe")
	}
}

// TestServiceMaxBody pins the request-body cap on POST /v1/jobs.
func TestServiceMaxBody(t *testing.T) {
	s, err := New(Config{Workers: 1, MaxBody: 256})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := `{"nx":4,"ny":4,"nz":8,"problem":"` + strings.Repeat("x", 512) + `"}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized spec: status %d, want 413", resp.StatusCode)
	}
	// A normal-size spec still parses under the cap.
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"nx":4,"ny":4,"nz":8,"max_iter":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("normal spec: status %d, want 202", resp2.StatusCode)
	}
}

// TestSpecResilienceFields covers validation of the new spec fields.
func TestSpecResilienceFields(t *testing.T) {
	base := JobSpec{Problem: "poisson", NX: 4, NY: 4, NZ: 8}
	neg := base
	neg.TimeoutMS = -5
	if err := neg.Validate(); err == nil || !strings.Contains(err.Error(), "timeout_ms") {
		t.Errorf("negative timeout_ms: err = %v", err)
	}
	hostFB := base
	hostFB.Backend = "local"
	hostFB.NZ = 4
	hostFB.AllowFallback = true
	if err := hostFB.Validate(); err == nil || !strings.Contains(err.Error(), "allow_fallback") {
		t.Errorf("allow_fallback on local backend: err = %v", err)
	}
	ok := base
	ok.Backend = "wafer"
	ok.TimeoutMS = 5000
	ok.AllowFallback = true
	if err := ok.Validate(); err != nil {
		t.Errorf("valid resilience fields rejected: %v", err)
	}
}

// TestServiceCancelSurvivesRestart: a cancellation finalized by one
// daemon stays canceled when the next daemon recovers the spool (the
// terminal state is durable, not re-queued).
func TestServiceCancelSurvivesRestart(t *testing.T) {
	spoolDir := t.TempDir()
	s1, err := New(Config{Workers: 1, SpoolDir: spoolDir})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s1.Submit(JobSpec{Problem: "poisson", NX: 4, NY: 4, NZ: 4, Backend: "local", MaxIter: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{Workers: 1, SpoolDir: spoolDir})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer shutdown(t, s2)
	time.Sleep(50 * time.Millisecond)
	if final := s2.getJob(v.ID).view(false); final.State != StateCanceled || final.Attempts != 0 {
		t.Errorf("after restart: state %s attempts %d, want canceled with 0 attempts", final.State, final.Attempts)
	}
}

// TestContextErrClassification pins that the error a canceled solve
// returns still satisfies errors.Is after the service wraps it — the
// classification runJob's outcome switch depends on.
func TestContextErrClassification(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Problem: "poisson", NX: 4, NY: 4, NZ: 4, Backend: "local", MaxIter: 5}.withDefaults()
	j := newJob("j000001", spec, time.Now())
	_, _, err = s.solveAttempt(ctx, j, spec, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled solveAttempt: err = %v, want context.Canceled", err)
	}
}
