package service

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// shutdown reaps a server's workers; used on the "crashed" daemon too —
// by then the armed crash point has already made its worker abandon the
// job, so parking the pool mutates nothing further.
func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestChaosCrashPoints kills a worker at every named instant before and
// after each durable state transition, restarts the daemon over the
// same spool, and asserts exactly-once termination: the job ends in
// exactly one terminal state, completed results are bit-identical to an
// uninterrupted reference solve, and a result spooled before the crash
// is served without being recomputed.
func TestChaosCrashPoints(t *testing.T) {
	waferSpec := JobSpec{Problem: "momentum", NX: 4, NY: 4, NZ: 8, Backend: "wafer", MaxIter: 4}
	localSpec := JobSpec{Problem: "poisson", NX: 4, NY: 4, NZ: 4, Backend: "local", MaxIter: 5}
	failFirst := func(spec JobSpec, attempt int) error {
		if attempt == 1 {
			return errors.New("synthetic solver fault")
		}
		return nil
	}
	failAlways := func(spec JobSpec, attempt int) error {
		return errors.New("permanent synthetic fault")
	}

	cases := []struct {
		name         string
		point        string
		spec         JobSpec
		fault1       func(JobSpec, int) error // crashed daemon
		fault2       func(JobSpec, int) error // recovered daemon
		wantState    JobState
		wantAttempts int
		wantErrPart  string
	}{
		// Crash around the queued→running write: the job re-runs from
		// its spec.
		{"before-running", "run.before-running", waferSpec, nil, nil, StateDone, 1, ""},
		{"after-running", "run.after-running", waferSpec, nil, nil, StateDone, 2, ""},
		// Crash around the running→done write. Before: the finished
		// result is lost with the process and the re-run must reproduce
		// it bit for bit. After: the spooled result is served verbatim,
		// never recomputed.
		{"before-done", "run.before-done", waferSpec, nil, nil, StateDone, 2, ""},
		{"after-done", "run.after-done", waferSpec, nil, nil, StateDone, 1, ""},
		// Crash around the retry's running→queued write.
		{"before-retry", "run.before-queued", localSpec, failFirst, nil, StateDone, 2, ""},
		{"after-retry", "run.after-queued", localSpec, failFirst, nil, StateDone, 2, ""},
		// Crash around the running→failed write. Before: the recovered
		// daemon sees the persisted attempt count, recognizes the poison
		// job and fails it terminally instead of crash-looping. After:
		// the failure is already durable.
		{"before-failed", "run.before-failed", localSpec, failAlways, failAlways, StateFailed, 3, "poison"},
		{"after-failed", "run.after-failed", localSpec, failAlways, failAlways, StateFailed, 2, "permanent synthetic fault"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spoolDir := t.TempDir()
			crashes := faultinject.NewCrashes()
			fired := crashes.Arm(tc.point, 1)

			s1, err := New(Config{
				Workers: 1, SpoolDir: spoolDir, Crashes: crashes,
				MaxRetries: 1, RetryBackoff: time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			s1.injectFault = tc.fault1
			s1.Start()
			v, err := s1.Submit(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			select {
			case <-fired:
			case <-time.After(120 * time.Second):
				t.Fatalf("crash point %s never fired", tc.point)
			}
			shutdown(t, s1)

			s2, err := New(Config{
				Workers: 1, SpoolDir: spoolDir,
				MaxRetries: 1, RetryBackoff: time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			s2.injectFault = tc.fault2
			s2.Start()
			defer shutdown(t, s2)

			final := waitTerminal(t, s2, v.ID, 120*time.Second)
			if final.State != tc.wantState {
				t.Fatalf("state %s (error %q), want %s", final.State, final.Error, tc.wantState)
			}
			if final.Attempts != tc.wantAttempts {
				t.Errorf("attempts = %d, want %d", final.Attempts, tc.wantAttempts)
			}
			if tc.wantErrPart != "" && !strings.Contains(final.Error, tc.wantErrPart) {
				t.Errorf("error %q does not mention %q", final.Error, tc.wantErrPart)
			}
			switch tc.wantState {
			case StateDone:
				assertBitIdentical(t, tc.name, final.Result, directSolve(t, tc.spec))
			case StateFailed:
				if final.Result != nil {
					t.Errorf("failed job carries a result")
				}
			}
			// Exactly-once: the terminal state is final. Give a stray
			// re-run a moment to (wrongly) bump the attempt count.
			time.Sleep(50 * time.Millisecond)
			if again := s2.getJob(v.ID).view(false); again.State != tc.wantState || again.Attempts != tc.wantAttempts {
				t.Errorf("terminal state not stable: now %s with %d attempts", again.State, again.Attempts)
			}
		})
	}
}

// TestChaosSpoolQuarantine seeds a spool with one good record and three
// corrupt ones — torn JSON, a record whose ID contradicts its filename,
// an unknown state — and asserts recovery quarantines the bad records,
// keeps the good one, and counts the quarantines into /metrics.
func TestChaosSpoolQuarantine(t *testing.T) {
	spoolDir := t.TempDir()
	good, _ := json.Marshal(JobView{
		ID:          "j000001",
		Spec:        JobSpec{Problem: "poisson", NX: 4, NY: 4, NZ: 4, Backend: "local", MaxIter: 5}.withDefaults(),
		State:       StateQueued,
		SubmittedAt: time.Now(),
	})
	torn := good[:len(good)/2]
	liar, _ := json.Marshal(JobView{ID: "j000009", State: StateQueued, SubmittedAt: time.Now()})
	alien, _ := json.Marshal(JobView{ID: "j000004", State: JobState("exploded"), SubmittedAt: time.Now()})
	for name, data := range map[string][]byte{
		"j000001.json": good,
		"j000002.json": torn,
		"j000003.json": liar,
		"j000004.json": alien,
	} {
		if err := os.WriteFile(filepath.Join(spoolDir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s, err := New(Config{Workers: 1, SpoolDir: spoolDir})
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	if len(ids) != 1 || ids[0] != "j000001" {
		t.Fatalf("recovered jobs %v, want exactly [j000001]", ids)
	}
	for _, name := range []string{"j000002.json", "j000003.json", "j000004.json"} {
		if _, err := os.Stat(filepath.Join(spoolDir, quarantineDir, name)); err != nil {
			t.Errorf("%s not in quarantine: %v", name, err)
		}
	}
	var buf strings.Builder
	s.metrics.write(&buf, 0, 0, 0, 0)
	if !strings.Contains(buf.String(), "wsesimd_spool_quarantined_total 3") {
		t.Errorf("/metrics does not count 3 quarantined records:\n%s", buf.String())
	}

	// The surviving job still solves.
	s.Start()
	defer shutdown(t, s)
	final := waitTerminal(t, s, "j000001", 60*time.Second)
	if final.State != StateDone {
		t.Fatalf("recovered job: state %s, error %q", final.State, final.Error)
	}
}

// TestChaosCkptQuarantine gives a recovering wafer job a corrupt
// checkpoint blob: the checksum check quarantines it and the job
// re-runs from its deterministic spec to a bit-identical result instead
// of resuming from garbage.
func TestChaosCkptQuarantine(t *testing.T) {
	spoolDir := t.TempDir()
	spec := JobSpec{Problem: "momentum", NX: 4, NY: 4, NZ: 8, Backend: "wafer", MaxIter: 4}.withDefaults()
	record, _ := json.Marshal(JobView{ID: "j000001", Spec: spec, State: StateSuspended, Attempts: 1, SubmittedAt: time.Now()})
	if err := os.WriteFile(filepath.Join(spoolDir, "j000001.json"), record, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(spoolDir, "j000001.ckpt"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{Workers: 1, SpoolDir: spoolDir})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer shutdown(t, s)
	final := waitTerminal(t, s, "j000001", 120*time.Second)
	if final.State != StateDone {
		t.Fatalf("state %s, error %q", final.State, final.Error)
	}
	assertBitIdentical(t, "rerun after ckpt quarantine", final.Result, directSolve(t, spec))
	if _, err := os.Stat(filepath.Join(spoolDir, quarantineDir, "j000001.ckpt")); err != nil {
		t.Errorf("corrupt checkpoint not quarantined: %v", err)
	}
	var buf strings.Builder
	s.metrics.write(&buf, 0, 0, 0, 0)
	if !strings.Contains(buf.String(), "wsesimd_spool_quarantined_total 1") {
		t.Errorf("/metrics does not count the quarantined checkpoint:\n%s", buf.String())
	}
}

// TestChaosSpoolWriteFaults runs the daemon on a filesystem that fails
// spool writes: a failure on the submission write surfaces to the
// client, failures on mid-run state writes degrade durability but never
// the in-memory job, and a restart after such a failure re-runs the job
// rather than losing it.
func TestChaosSpoolWriteFaults(t *testing.T) {
	spoolDir := t.TempDir()
	// Write 1 (the submission record) fails; every later write passes.
	ffs := faultinject.NewFaultFS(nil, &faultinject.Rule{
		Op: faultinject.OpWrite, Skip: 0, Times: 1, Mode: faultinject.ModeFail,
	})
	s, err := New(Config{Workers: 1, SpoolDir: spoolDir, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer shutdown(t, s)

	spec := JobSpec{Problem: "poisson", NX: 4, NY: 4, NZ: 4, Backend: "local", MaxIter: 5}
	if _, err := s.Submit(spec); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("submit during write fault: err = %v, want the injected fault", err)
	}
	if n := ffs.Injected(); n != 1 {
		t.Fatalf("%d faults fired, want 1", n)
	}
	// The filesystem healed: the next submission goes through and the
	// job completes normally.
	v, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, v.ID, 60*time.Second)
	if final.State != StateDone {
		t.Fatalf("state %s, error %q", final.State, final.Error)
	}
	assertBitIdentical(t, "post-fault job", final.Result, directSolve(t, spec))
}

// TestChaosTornSubmitWrite tears the durable write of a job record
// mid-flight (the torn half is published by the rename, exactly what a
// crash between write and fsync leaves) and asserts the next daemon
// quarantines the half-record instead of failing recovery.
func TestChaosTornSubmitWrite(t *testing.T) {
	spoolDir := t.TempDir()
	ffs := faultinject.NewFaultFS(nil, &faultinject.Rule{
		Op: faultinject.OpWrite, PathContains: ".json", Skip: 0, Times: 1, Mode: faultinject.ModeTorn,
	})
	s1, err := New(Config{Workers: 1, SpoolDir: spoolDir, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	// Not started: the torn record stays exactly as submitted.
	if _, err := s1.Submit(JobSpec{Problem: "poisson", NX: 4, NY: 4, NZ: 4, Backend: "local", MaxIter: 5}); err != nil {
		t.Fatalf("torn write reports success by design, submit failed: %v", err)
	}

	s2, err := New(Config{Workers: 1, SpoolDir: spoolDir})
	if err != nil {
		t.Fatal(err)
	}
	s2.mu.Lock()
	n := len(s2.order)
	s2.mu.Unlock()
	if n != 0 {
		t.Fatalf("recovered %d jobs from a torn record, want 0", n)
	}
	if _, err := os.Stat(filepath.Join(spoolDir, quarantineDir, "j000001.json")); err != nil {
		t.Errorf("torn record not quarantined: %v", err)
	}
}
