package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadMix selects the ssbench operation mix.
type LoadMix string

// Mixes: FullWrite is 100% solve submissions (each timed submit →
// poll-to-terminal); ReadWrite interleaves status reads of finished
// jobs against a 20% write stream — the classic cache-friendly
// read-mostly profile.
const (
	MixFullWrite LoadMix = "full-write"
	MixReadWrite LoadMix = "mixed"
)

// ParseLoadMix maps the flag names to a mix.
func ParseLoadMix(s string) (LoadMix, error) {
	switch LoadMix(s) {
	case MixFullWrite:
		return MixFullWrite, nil
	case MixReadWrite:
		return MixReadWrite, nil
	}
	return "", fmt.Errorf("service: unknown load mix %q (want full-write or mixed)", s)
}

// LoadOptions configures one load-generation run against a daemon.
type LoadOptions struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8844".
	BaseURL string
	Mix     LoadMix
	// Concurrency is the number of client workers; default 4.
	Concurrency int
	// Ops is the total operation budget across workers; default 64.
	Ops int
	// WriteFraction is the share of writes under MixReadWrite; default
	// 0.2. MixFullWrite ignores it.
	WriteFraction float64
	// CancelFraction is the share of write operations that DELETE their
	// job right after submitting instead of polling it to completion —
	// the chaos mix that exercises cancellation under load. 0 disables.
	CancelFraction float64
	// Spec is the job submitted by write operations.
	Spec JobSpec
	// PollInterval is the status-poll cadence while waiting for a
	// submitted job to finish; default 2ms.
	PollInterval time.Duration
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Seed drives the mix's read/write interleave; default 1.
	Seed int64
}

// LatencySummary condenses one operation class's latencies.
type LatencySummary struct {
	Count int
	Avg   time.Duration
	P50   time.Duration
	P95   time.Duration
	Max   time.Duration
}

func summarize(lat []time.Duration) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	pick := func(q float64) time.Duration {
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}
	return LatencySummary{
		Count: len(lat),
		Avg:   sum / time.Duration(len(lat)),
		P50:   pick(0.50),
		P95:   pick(0.95),
		Max:   lat[len(lat)-1],
	}
}

// LoadStats reports one run. QPS counts all operations (writes are
// submit-to-done round trips, reads are single status GETs) over the
// wall-clock of the whole run.
type LoadStats struct {
	Elapsed time.Duration
	QPS     float64
	Writes  LatencySummary
	Reads   LatencySummary
	// Cancels are submit-then-DELETE round trips (CancelFraction > 0),
	// timed from submission to the job's terminal state.
	Cancels LatencySummary
	Errors  int
}

// RunLoad drives the daemon with Concurrency workers until the Ops
// budget is spent and reports throughput and latency. It is the engine
// of cmd/ssbench and of the root BenchmarkService entries the
// regression gate tracks.
func RunLoad(o LoadOptions) (LoadStats, error) {
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.Ops <= 0 {
		o.Ops = 64
	}
	if o.WriteFraction <= 0 {
		o.WriteFraction = 0.2
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 2 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Mix == "" {
		o.Mix = MixFullWrite
	}

	var (
		mu        sync.Mutex
		writeLat  []time.Duration
		readLat   []time.Duration
		cancelLat []time.Duration
		doneIDs   []string
		errs      int
	)
	ops := make(chan int, o.Ops)
	for i := 0; i < o.Ops; i++ {
		ops <- i
	}
	close(ops)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(worker)))
			for range ops {
				doWrite := o.Mix == MixFullWrite || rng.Float64() < o.WriteFraction
				if !doWrite {
					mu.Lock()
					var id string
					if len(doneIDs) > 0 {
						id = doneIDs[rng.Intn(len(doneIDs))]
					}
					mu.Unlock()
					if id == "" {
						// Nothing to read yet: fall through to a write so
						// the run always makes progress.
						doWrite = true
					} else {
						t0 := time.Now()
						err := getJSON(o.Client, o.BaseURL+"/v1/jobs/"+id, nil)
						d := time.Since(t0)
						mu.Lock()
						if err != nil {
							errs++
						} else {
							readLat = append(readLat, d)
						}
						mu.Unlock()
						continue
					}
				}
				if doWrite {
					if o.CancelFraction > 0 && rng.Float64() < o.CancelFraction {
						t0 := time.Now()
						err := submitAndCancel(o.Client, o.BaseURL, o.Spec, o.PollInterval)
						d := time.Since(t0)
						mu.Lock()
						if err != nil {
							errs++
						} else {
							cancelLat = append(cancelLat, d)
						}
						mu.Unlock()
						continue
					}
					t0 := time.Now()
					id, err := submitAndWait(o.Client, o.BaseURL, o.Spec, o.PollInterval)
					d := time.Since(t0)
					mu.Lock()
					if err != nil {
						errs++
					} else {
						writeLat = append(writeLat, d)
						doneIDs = append(doneIDs, id)
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := LoadStats{
		Elapsed: elapsed,
		Writes:  summarize(writeLat),
		Reads:   summarize(readLat),
		Cancels: summarize(cancelLat),
		Errors:  errs,
	}
	if sec := elapsed.Seconds(); sec > 0 {
		st.QPS = float64(st.Writes.Count+st.Reads.Count+st.Cancels.Count) / sec
	}
	if errs > 0 {
		return st, fmt.Errorf("service: load run finished with %d failed operations", errs)
	}
	return st, nil
}

// submitAndWait POSTs the spec and polls the job to a terminal state,
// returning the job ID.
func submitAndWait(c *http.Client, base string, spec JobSpec, poll time.Duration) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	resp, err := c.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("service: submit: %s: %s", resp.Status, data)
	}
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		return "", err
	}
	for {
		var jv JobView
		if err := getJSON(c, base+"/v1/jobs/"+v.ID, &jv); err != nil {
			return "", err
		}
		switch jv.State {
		case StateDone:
			return v.ID, nil
		case StateFailed:
			return "", fmt.Errorf("service: job %s failed: %s", v.ID, jv.Error)
		}
		time.Sleep(poll)
	}
}

// submitAndCancel POSTs the spec, immediately DELETEs the job, and
// polls it to a terminal state. Both canceled and done are wins — a
// fast solve may legitimately beat the DELETE — but a failure is not.
func submitAndCancel(c *http.Client, base string, spec JobSpec, poll time.Duration) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := c.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("service: submit: %s: %s", resp.Status, data)
	}
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+v.ID, nil)
	if err != nil {
		return err
	}
	dresp, err := c.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	// 409 means the job finished before the DELETE landed — fine.
	if dresp.StatusCode != http.StatusOK && dresp.StatusCode != http.StatusConflict {
		return fmt.Errorf("service: cancel %s: %s", v.ID, dresp.Status)
	}
	for {
		var jv JobView
		if err := getJSON(c, base+"/v1/jobs/"+v.ID, &jv); err != nil {
			return err
		}
		switch jv.State {
		case StateCanceled, StateDone:
			return nil
		case StateFailed, StateExpired:
			return fmt.Errorf("service: canceled job %s ended %s: %s", v.ID, jv.State, jv.Error)
		}
		time.Sleep(poll)
	}
}

func getJSON(c *http.Client, url string, out any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("service: GET %s: %s: %s", url, resp.Status, data)
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
