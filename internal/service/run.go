package service

import (
	"context"
	"errors"

	"repro/internal/core"
	"repro/internal/fp16"
	"repro/internal/kernels"
	"repro/internal/multiwafer"
	"repro/internal/solver"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// errSuspended flows out of a wafer solve's checkpoint callback when
// the server is draining: the solve aborts at an iteration boundary
// with its state already spooled, and the job parks as suspended
// instead of failed.
var errSuspended = errors.New("service: job suspended for shutdown")

// solveHooks carries the service-side instrumentation of one solve:
// live progress for /stream, and — wafer backend only — the suspend
// checkpoint machinery and a resume blob from a previous run.
type solveHooks struct {
	progress        func(iter int, rel float64)
	checkpointEvery int
	checkpoint      func([]byte) error
	resume          []byte
}

// runSolve executes one job. Host backends (local, cluster) hold no
// machine state and go straight through core.Solve. The simulated
// backends replicate core.Solve's exact sequence — normalize, scale the
// RHS, fp16-convert, solve, true residual — but draw the machine from
// the warm cache instead of building one per call. The replication is
// load-bearing for the API contract "a job returns the bits core.Solve
// returns": TestServiceBitIdenticalToDirectSolve pins it, and the
// warm-reuse half rests on kernels.TestWarmSolverReuseBitIdentical /
// multiwafer.TestClusterWarmReuseBitIdentical.
func (s *Server) runSolve(ctx context.Context, p core.Problem, o core.Options, h solveHooks) (core.Result, error) {
	var res core.Result
	if err := o.Validate(); err != nil {
		return res, err
	}
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	switch o.Backend {
	case core.Local, core.Cluster:
		return core.SolveContext(ctx, p, o)
	}

	norm, diag := p.Op.Normalize()
	sb := stencil.ScaleRHS(p.B, diag)
	op := stencil.NewOp7Half(norm)
	m := norm.M

	switch o.Backend {
	case core.Wafer:
		key := machineKey{backend: core.Wafer, nx: m.NX, ny: m.NY, nz: m.NZ, workers: o.Wafer.Workers}
		w, err := s.cache.checkout(key, op)
		if err != nil {
			return res, err
		}
		if w == nil {
			cfg := wse.CS1(m.NX, m.NY)
			cfg.Workers = o.Wafer.Workers
			mach := wse.New(cfg)
			solver, err := kernels.NewBiCGStabWSE(mach, op)
			if err != nil {
				mach.Close()
				return res, err
			}
			pristine, err := solver.Pristine()
			if err != nil {
				mach.Close()
				return res, err
			}
			w = &warmMachine{key: key, mach: mach, wafer: solver, pristine: pristine}
		}
		defer s.cache.put(w)
		x16, st, err := w.wafer.Solve(fp16.FromFloat64Slice(sb), kernels.WSEOptions{
			Ctx:     ctx,
			MaxIter: o.MaxIter, Tol: o.Tol,
			CheckpointEvery: h.checkpointEvery,
			Checkpoint:      h.checkpoint,
			Resume:          h.resume,
			Progress:        h.progress,
		})
		if err != nil {
			return res, err
		}
		res.X = fp16.ToFloat64Slice(x16)
		res.Iterations = st.Iterations
		res.Converged = st.Converged
		res.Breakdown = st.Breakdown
		res.History = st.History
		res.Telemetry = core.TelemetryFromWSE(st)

	case core.MultiWafer:
		grid := o.MultiWafer.Grid
		if grid.W == 0 {
			grid = multiwafer.Topology{W: 1, H: 1}
		}
		key := machineKey{backend: core.MultiWafer, nx: m.NX, ny: m.NY, nz: m.NZ,
			workers: o.MultiWafer.Workers, grid: grid}
		w, err := s.cache.checkout(key, op)
		if err != nil {
			return res, err
		}
		if w == nil {
			cl, err := multiwafer.New(multiwafer.Config{Grid: grid, Workers: o.MultiWafer.Workers}, op)
			if err != nil {
				return res, err
			}
			w = &warmMachine{key: key, cluster: cl}
		}
		defer s.cache.put(w)
		x16, st, err := w.cluster.Solve(fp16.FromFloat64Slice(sb), kernels.WSEOptions{
			Ctx:     ctx,
			MaxIter: o.MaxIter, Tol: o.Tol, Progress: h.progress,
		})
		if err != nil {
			return res, err
		}
		res.X = fp16.ToFloat64Slice(x16)
		res.Iterations = st.Iterations
		res.Converged = st.Converged
		res.Breakdown = st.Breakdown
		res.History = st.History
		res.Telemetry = core.TelemetryFromMultiWafer(st)
	}
	res.TrueResidual = norm.ResidualNorm(res.X, sb) / stencil.Norm2(sb)
	return res, nil
}

// runFallback is the graceful-degradation path: a wafer or multiwafer
// job whose backend's circuit breaker is open solves on the host in
// chunked-mixed precision instead. The chunk size NZ makes the host
// reduction order match the per-tile wafer dots combined by
// cluster.ExactSum32, so for the multiwafer backend (and the halo
// wafer engine) the residual history and solution are bit-identical to
// the simulated solve — core.TestAllBackendsBitIdentical pins the
// equivalence, and TestServiceFallback pins it end to end. The default
// single-wafer engine's FIFO-pipeline SpMV associates its fp16 sums
// differently, so its fallback is deterministic and lands on the same
// fp16 accuracy plateau but can differ in last-place bits; the job's
// result records Fallback so clients can tell.
func (s *Server) runFallback(ctx context.Context, p core.Problem, o core.Options, h solveHooks) (core.Result, error) {
	var res core.Result
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	norm, diag := p.Op.Normalize()
	sb := stencil.ScaleRHS(p.B, diag)
	m := norm.M
	be := solver.HostBackend3D{Context: solver.NewMixedChunked(m.NZ)}
	x, st, err := be.Solve3D(norm, sb, make([]float64, len(sb)), solver.Options{
		Ctx:     ctx,
		MaxIter: o.MaxIter, Tol: o.Tol, RecordHistory: true,
	})
	if err != nil {
		return res, err
	}
	if h.progress != nil {
		for i, rel := range st.History {
			h.progress(i+1, rel)
		}
	}
	res.X = x
	res.Iterations = st.Iterations
	res.Converged = st.Converged
	res.Breakdown = st.Breakdown
	res.History = st.History
	res.Telemetry = core.Telemetry{Backend: core.Local.String(), Precision: "mixed-chunked"}
	res.TrueResidual = norm.ResidualNorm(res.X, sb) / stencil.Norm2(sb)
	return res, nil
}
