package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds, in seconds. Solves
// span host microseconds to multi-second wafer simulations.
var latencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60,
}

// backendMetrics accumulates one backend's counters. Guarded by
// metrics.mu.
type backendMetrics struct {
	submitted, completed, failed, retried, suspended int64
	canceled, expired, fallbacks, breakerTrips       int64
	latencySum                                       float64 // seconds, completed solves
	latencyCount                                     int64
	latencyBucket                                    []int64 // cumulative-at-scrape, stored per-bucket
}

// metrics is the /metrics registry: plain counters under a mutex,
// rendered in the Prometheus text exposition format. No client library
// — the format is five lines of fmt.
type metrics struct {
	start time.Time

	mu          sync.Mutex
	per         map[string]*backendMetrics
	quarantined int64 // spool files quarantined (not per-backend)
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), per: make(map[string]*backendMetrics)}
}

func (m *metrics) backend(name string) *backendMetrics {
	bm := m.per[name]
	if bm == nil {
		bm = &backendMetrics{latencyBucket: make([]int64, len(latencyBuckets))}
		m.per[name] = bm
	}
	return bm
}

func (m *metrics) submitted(backend string) {
	m.mu.Lock()
	m.backend(backend).submitted++
	m.mu.Unlock()
}

func (m *metrics) retried(backend string) {
	m.mu.Lock()
	m.backend(backend).retried++
	m.mu.Unlock()
}

func (m *metrics) suspended(backend string) {
	m.mu.Lock()
	m.backend(backend).suspended++
	m.mu.Unlock()
}

func (m *metrics) failed(backend string) {
	m.mu.Lock()
	m.backend(backend).failed++
	m.mu.Unlock()
}

func (m *metrics) canceled(backend string) {
	m.mu.Lock()
	m.backend(backend).canceled++
	m.mu.Unlock()
}

func (m *metrics) expired(backend string) {
	m.mu.Lock()
	m.backend(backend).expired++
	m.mu.Unlock()
}

func (m *metrics) fallback(backend string) {
	m.mu.Lock()
	m.backend(backend).fallbacks++
	m.mu.Unlock()
}

func (m *metrics) breakerTripped(backend string) {
	m.mu.Lock()
	m.backend(backend).breakerTrips++
	m.mu.Unlock()
}

func (m *metrics) quarantine() {
	m.mu.Lock()
	m.quarantined++
	m.mu.Unlock()
}

func (m *metrics) completed(backend string, d time.Duration) {
	sec := d.Seconds()
	m.mu.Lock()
	bm := m.backend(backend)
	bm.completed++
	bm.latencySum += sec
	bm.latencyCount++
	for i, ub := range latencyBuckets {
		if sec <= ub {
			bm.latencyBucket[i]++
			break
		}
	}
	m.mu.Unlock()
}

// qps returns completed solves per second of uptime for one backend.
func (m *metrics) qps(backend string, now time.Time) float64 {
	up := now.Sub(m.start).Seconds()
	if up <= 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	bm := m.per[backend]
	if bm == nil {
		return 0
	}
	return float64(bm.completed) / up
}

// write renders the registry. queueDepth, running and the cache
// counters come from the server, which owns those gauges.
func (m *metrics) write(w io.Writer, queueDepth, running int, cacheHits, cacheMisses int64) {
	now := time.Now()
	up := now.Sub(m.start).Seconds()
	fmt.Fprintf(w, "# TYPE wsesimd_uptime_seconds gauge\nwsesimd_uptime_seconds %g\n", up)
	fmt.Fprintf(w, "# TYPE wsesimd_queue_depth gauge\nwsesimd_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "# TYPE wsesimd_jobs_running gauge\nwsesimd_jobs_running %d\n", running)
	fmt.Fprintf(w, "# TYPE wsesimd_machine_cache_hits_total counter\nwsesimd_machine_cache_hits_total %d\n", cacheHits)
	fmt.Fprintf(w, "# TYPE wsesimd_machine_cache_misses_total counter\nwsesimd_machine_cache_misses_total %d\n", cacheMisses)
	rate := 0.0
	if total := cacheHits + cacheMisses; total > 0 {
		rate = float64(cacheHits) / float64(total)
	}
	fmt.Fprintf(w, "# TYPE wsesimd_machine_cache_hit_rate gauge\nwsesimd_machine_cache_hit_rate %g\n", rate)

	m.mu.Lock()
	fmt.Fprintf(w, "# TYPE wsesimd_spool_quarantined_total counter\nwsesimd_spool_quarantined_total %d\n", m.quarantined)
	names := make([]string, 0, len(m.per))
	for name := range m.per {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bm := m.per[name]
		fmt.Fprintf(w, "wsesimd_jobs_submitted_total{backend=%q} %d\n", name, bm.submitted)
		fmt.Fprintf(w, "wsesimd_jobs_completed_total{backend=%q} %d\n", name, bm.completed)
		fmt.Fprintf(w, "wsesimd_jobs_failed_total{backend=%q} %d\n", name, bm.failed)
		fmt.Fprintf(w, "wsesimd_jobs_retried_total{backend=%q} %d\n", name, bm.retried)
		fmt.Fprintf(w, "wsesimd_jobs_suspended_total{backend=%q} %d\n", name, bm.suspended)
		fmt.Fprintf(w, "wsesimd_jobs_canceled_total{backend=%q} %d\n", name, bm.canceled)
		fmt.Fprintf(w, "wsesimd_jobs_expired_total{backend=%q} %d\n", name, bm.expired)
		fmt.Fprintf(w, "wsesimd_fallback_solves_total{backend=%q} %d\n", name, bm.fallbacks)
		fmt.Fprintf(w, "wsesimd_breaker_trips_total{backend=%q} %d\n", name, bm.breakerTrips)
		if up > 0 {
			fmt.Fprintf(w, "wsesimd_solve_qps{backend=%q} %g\n", name, float64(bm.completed)/up)
		}
		cum := int64(0)
		for i, ub := range latencyBuckets {
			cum += bm.latencyBucket[i]
			fmt.Fprintf(w, "wsesimd_solve_latency_seconds_bucket{backend=%q,le=%q} %d\n", name, fmt.Sprintf("%g", ub), cum)
		}
		fmt.Fprintf(w, "wsesimd_solve_latency_seconds_bucket{backend=%q,le=\"+Inf\"} %d\n", name, bm.latencyCount)
		fmt.Fprintf(w, "wsesimd_solve_latency_seconds_sum{backend=%q} %g\n", name, bm.latencySum)
		fmt.Fprintf(w, "wsesimd_solve_latency_seconds_count{backend=%q} %d\n", name, bm.latencyCount)
	}
	m.mu.Unlock()
}
