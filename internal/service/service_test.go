package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// directSolve runs the spec through core.Solve — the reference the
// service's warm-machine path must match bit for bit.
func directSolve(t *testing.T, spec JobSpec) core.Result {
	t.Helper()
	spec = spec.withDefaults()
	o, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	p, err := spec.BuildProblem()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(p, o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertBitIdentical(t *testing.T, label string, got *JobResult, want core.Result) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: job has no result", label)
	}
	if len(got.History) != len(want.History) {
		t.Fatalf("%s: %d history entries, direct solve has %d", label, len(got.History), len(want.History))
	}
	for i := range want.History {
		if math.Float64bits(got.History[i]) != math.Float64bits(want.History[i]) {
			t.Fatalf("%s: history[%d] = %.17g, direct solve has %.17g", label, i, got.History[i], want.History[i])
		}
	}
	if len(got.X) != len(want.X) {
		t.Fatalf("%s: solution length %d, want %d", label, len(got.X), len(want.X))
	}
	for i := range want.X {
		if math.Float64bits(got.X[i]) != math.Float64bits(want.X[i]) {
			t.Fatalf("%s: x[%d] = %v, direct solve has %v", label, i, got.X[i], want.X[i])
		}
	}
	if math.Float64bits(got.TrueResidual) != math.Float64bits(want.TrueResidual) {
		t.Fatalf("%s: true residual %v, direct solve has %v", label, got.TrueResidual, want.TrueResidual)
	}
}

func waitTerminal(t *testing.T, s *Server, id string, timeout time.Duration) JobView {
	t.Helper()
	j := s.getJob(id)
	if j == nil {
		t.Fatalf("no such job %s", id)
	}
	select {
	case <-j.done:
	case <-time.After(timeout):
		t.Fatalf("job %s did not finish within %v (state %s)", id, timeout, j.view(false).State)
	}
	return j.view(true)
}

func TestJobSpecValidate(t *testing.T) {
	valid := []JobSpec{
		{Problem: "poisson", NX: 4, NY: 4, NZ: 8, Backend: "wafer", MaxIter: 3},
		{NX: 4, NY: 4, NZ: 8}, // defaults: momentum on the wafer
		{Problem: "random", NX: 4, NY: 4, NZ: 3, Backend: "local", Precision: "fp32"},
		{Problem: "momentum", NX: 6, NY: 6, NZ: 8, Backend: "multiwafer", Grid: "2x1", Workers: 2},
		{Problem: "momentum", NX: 4, NY: 4, NZ: 6, Backend: "cluster", Ranks: 4},
	}
	for i, spec := range valid {
		if err := spec.Validate(); err != nil {
			t.Errorf("valid spec %d rejected: %v", i, err)
		}
	}

	invalid := []struct {
		spec  JobSpec
		field string
	}{
		{JobSpec{Problem: "heat", NX: 4, NY: 4, NZ: 8}, "problem"},
		{JobSpec{NX: 0, NY: 4, NZ: 8}, "nx"},
		{JobSpec{NX: 700, NY: 700, NZ: 700}, "nx"},
		{JobSpec{NX: 4, NY: 4, NZ: 7, Backend: "wafer"}, "nz"},
		{JobSpec{NX: 4, NY: 4, NZ: 7, Backend: "multiwafer"}, "nz"},
		{JobSpec{NX: 4, NY: 4, NZ: 8, Backend: "gpu"}, "backend"},
		{JobSpec{NX: 4, NY: 4, NZ: 8, Backend: "local", Precision: "fp8"}, "precision"},
		{JobSpec{NX: 4, NY: 4, NZ: 8, Backend: "wafer", Precision: "fp64"}, "precision"},
		{JobSpec{NX: 4, NY: 4, NZ: 8, Backend: "local", Workers: 2}, "workers"},
		{JobSpec{NX: 4, NY: 4, NZ: 8, Backend: "wafer", Ranks: 4}, "ranks"},
		{JobSpec{NX: 4, NY: 4, NZ: 8, Backend: "wafer", Grid: "2x1"}, "grid"},
		{JobSpec{NX: 4, NY: 4, NZ: 8, Backend: "multiwafer", Grid: "2x"}, "grid"},
	}
	for _, tc := range invalid {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("spec %+v accepted, want error on %q", tc.spec, tc.field)
			continue
		}
		var se *SpecError
		if errors.As(err, &se) {
			if se.Field != tc.field {
				t.Errorf("spec %+v rejected on field %q, want %q", tc.spec, se.Field, tc.field)
			}
		}
	}

	// Negative MaxIter flows through to core.Options.Validate.
	err := JobSpec{NX: 4, NY: 4, NZ: 8, MaxIter: -1}.Validate()
	var oe *core.OptionError
	if !errors.As(err, &oe) {
		t.Errorf("negative max_iter: got %v, want a core.OptionError", err)
	}
}

// TestServiceParallelMixedBackends is the tentpole acceptance test: a
// dozen jobs across all four backends run concurrently (under -race in
// CI), every result is bit-identical to a direct core.Solve of the same
// spec, and the machine cache reuses warm machines across the
// same-shape wafer jobs.
func TestServiceParallelMixedBackends(t *testing.T) {
	s, err := New(Config{Workers: 4, SpoolDir: t.TempDir(), MaxIdleMachines: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var specs []JobSpec
	// Eight same-shape wafer jobs with distinct right-hand sides: four
	// workers can build at most four machines, so at least four of
	// these must hit the cache.
	for seed := int64(1); seed <= 8; seed++ {
		specs = append(specs, JobSpec{Problem: "momentum", NX: 4, NY: 4, NZ: 8,
			Seed: seed, Backend: "wafer", MaxIter: 4})
	}
	specs = append(specs,
		JobSpec{Problem: "poisson", NX: 4, NY: 4, NZ: 6, Backend: "local", Precision: "mixed", MaxIter: 8},
		JobSpec{Problem: "poisson", NX: 4, NY: 4, NZ: 6, Backend: "cluster", Ranks: 4, MaxIter: 8},
		JobSpec{Problem: "momentum", NX: 6, NY: 6, NZ: 8, Seed: 3, Backend: "multiwafer", Grid: "2x1", MaxIter: 4},
		JobSpec{Problem: "momentum", NX: 6, NY: 6, NZ: 8, Seed: 5, Backend: "multiwafer", Grid: "2x1", MaxIter: 4},
	)

	ids := make([]string, len(specs))
	for i, spec := range specs {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %s: %s", i, resp.Status, data)
		}
		var v JobView
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID
	}

	for i, id := range ids {
		v := waitTerminal(t, s, id, 120*time.Second)
		if v.State != StateDone {
			t.Fatalf("job %s (spec %d): state %s, error %q", id, i, v.State, v.Error)
		}
		assertBitIdentical(t, fmt.Sprintf("job %s (spec %d)", id, i), v.Result, directSolve(t, specs[i]))
	}

	hits, misses := s.CacheStats()
	if hits < 4 {
		t.Errorf("machine cache: %d hits / %d misses, want >= 4 hits from warm reuse", hits, misses)
	}
	// The hit rate is observable, as /metrics promises.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsText, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := fmt.Sprintf("wsesimd_machine_cache_hits_total %d", hits)
	if !strings.Contains(string(metricsText), want) {
		t.Errorf("/metrics missing %q:\n%s", want, metricsText)
	}
	if !strings.Contains(string(metricsText), `wsesimd_jobs_completed_total{backend="wafer"} 8`) {
		t.Errorf("/metrics missing wafer completion count:\n%s", metricsText)
	}
}

// TestServiceSuspendResume pins the zero-lost-jobs shutdown contract:
// a daemon SIGTERM'd mid-solve checkpoints the in-flight wafer job, and
// a fresh daemon on the same spool resumes it to a result bit-identical
// to an uninterrupted solve.
func TestServiceSuspendResume(t *testing.T) {
	spoolDir := t.TempDir()
	spec := JobSpec{Problem: "momentum", NX: 4, NY: 4, NZ: 16, Backend: "wafer", MaxIter: 200}

	s1, err := New(Config{Workers: 1, SpoolDir: spoolDir, SuspendEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Hold the solve mid-flight until draining starts, so the shutdown
	// deterministically catches it before the suspend checkpoint at
	// iteration 2 (a tiny mesh solves faster than a SIGTERM lands).
	started := make(chan struct{})
	var once sync.Once
	s1.testIterHook = func(_ *job, iter int) {
		once.Do(func() { close(started) })
		for !s1.draining.Load() {
			time.Sleep(time.Millisecond)
		}
	}
	s1.Start()
	v, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	id := v.ID

	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	jv := s1.getJob(id).view(false)
	if jv.State != StateSuspended {
		t.Fatalf("after shutdown: state %s, want %s", jv.State, StateSuspended)
	}
	if _, err := os.Stat(filepath.Join(spoolDir, id+".ckpt")); err != nil {
		t.Fatalf("no checkpoint blob in the spool: %v", err)
	}

	// Restart on the same spool: the job resumes and completes.
	s2, err := New(Config{Workers: 1, SpoolDir: spoolDir, SuspendEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.getJob(id).view(false).State; got != StateQueued {
		t.Fatalf("restarted daemon: state %s, want %s", got, StateQueued)
	}
	s2.Start()
	final := waitTerminal(t, s2, id, 120*time.Second)
	if final.State != StateDone {
		t.Fatalf("resumed job: state %s, error %q", final.State, final.Error)
	}
	assertBitIdentical(t, "resumed job", final.Result, directSolve(t, spec))

	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := s2.Shutdown(ctx2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(spoolDir, id+".ckpt")); !os.IsNotExist(err) {
		t.Errorf("checkpoint blob not cleaned up after completion")
	}
}

// TestServiceRetry exercises the backoff path: a fault on the first
// attempt re-queues the job, the second attempt succeeds.
func TestServiceRetry(t *testing.T) {
	s, err := New(Config{Workers: 1, RetryBackoff: time.Millisecond, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.injectFault = func(spec JobSpec, attempt int) error {
		if attempt == 1 {
			return errors.New("synthetic solver fault")
		}
		return nil
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	spec := JobSpec{Problem: "poisson", NX: 4, NY: 4, NZ: 4, Backend: "local", MaxIter: 5}
	v, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, v.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("state %s, error %q", final.State, final.Error)
	}
	if final.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (one fault, one success)", final.Attempts)
	}
	assertBitIdentical(t, "retried job", final.Result, directSolve(t, spec))

	// A permanent fault exhausts MaxRetries and fails the job.
	s.injectFault = func(spec JobSpec, attempt int) error { return errors.New("permanent fault") }
	v2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final2 := waitTerminal(t, s, v2.ID, 30*time.Second)
	if final2.State != StateFailed {
		t.Fatalf("permanently faulting job: state %s, want failed", final2.State)
	}
	if final2.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (initial + 2 retries)", final2.Attempts)
	}
}

// TestServiceStream reads the NDJSON residual stream of a finished job:
// one line per history entry, then the terminal state line.
func TestServiceStream(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := JobSpec{Problem: "momentum", NX: 4, NY: 4, NZ: 8, Backend: "wafer", MaxIter: 4}
	v, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var progress int
	var sawFinal bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if _, ok := line["iter"]; ok {
			progress++
		}
		if st, ok := line["state"]; ok {
			sawFinal = true
			if st != string(StateDone) {
				t.Fatalf("stream ended in state %v", st)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	direct := directSolve(t, spec)
	if progress != len(direct.History) {
		t.Errorf("streamed %d progress lines, solve has %d history entries", progress, len(direct.History))
	}
	if !sawFinal {
		t.Error("stream ended without a terminal state line")
	}
}

// TestServiceHTTPRejects covers the API's negative space: malformed
// and misrouted requests fail with field-precise errors and the right
// status codes, and a draining daemon refuses new work.
func TestServiceHTTPRejects(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately not started: submitted jobs stay queued.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(data)
	}

	for _, tc := range []struct {
		body string
		want string
	}{
		{`{"nx":4,"ny":4,"nz":8,"backend":"gpu"}`, "backend"},
		{`{"nx":4,"ny":4,"nz":7,"backend":"wafer"}`, "nz"},
		{`{"nx":4,"ny":4,"nz":8,"backend":"wafer","ranks":4}`, "ranks"},
		{`{"nx":4,"ny":4,"nz":8,"max_iter":-1}`, "MaxIter"},
		{`{"nx":4,"ny":4,"nz":8,"frobnicate":true}`, "frobnicate"},
		{`not json`, "bad job spec"},
	} {
		code, body := post(tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("POST %s: status %d, want 400", tc.body, code)
		}
		if !strings.Contains(body, tc.want) {
			t.Errorf("POST %s: error %q does not name %q", tc.body, body, tc.want)
		}
	}

	if resp, _ := http.Get(ts.URL + "/v1/jobs/j999999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: %d, want 404", resp.StatusCode)
	}

	// A queued job has no solution yet.
	v, err := s.Submit(JobSpec{NX: 4, NY: 4, NZ: 8, MaxIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp, _ := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/solution"); resp.StatusCode != http.StatusConflict {
		t.Errorf("solution of queued job: %d, want 409", resp.StatusCode)
	}

	// Draining: submissions bounce with 503.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Shutdown(ctx)
	if code, _ := post(`{"nx":4,"ny":4,"nz":8}`); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %d, want 503", code)
	}
}

// TestLoadGen runs the ssbench engine against an in-process daemon —
// the same path the root BenchmarkService entries measure.
func TestLoadGen(t *testing.T) {
	s, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := JobSpec{Problem: "poisson", NX: 4, NY: 4, NZ: 4, Backend: "local", MaxIter: 5}
	for _, mix := range []LoadMix{MixFullWrite, MixReadWrite} {
		st, err := RunLoad(LoadOptions{BaseURL: ts.URL, Mix: mix, Concurrency: 2, Ops: 8, Spec: spec})
		if err != nil {
			t.Fatalf("%s: %v", mix, err)
		}
		if st.Writes.Count+st.Reads.Count != 8 {
			t.Errorf("%s: %d ops completed, want 8", mix, st.Writes.Count+st.Reads.Count)
		}
		if st.QPS <= 0 {
			t.Errorf("%s: QPS = %v, want > 0", mix, st.QPS)
		}
		if st.Writes.Count > 0 && st.Writes.Avg <= 0 {
			t.Errorf("%s: zero average write latency", mix)
		}
	}
}
