package service

import (
	"sync"
	"time"
)

// breaker is a per-backend circuit breaker. Consecutive genuine solve
// failures (not suspends, cancels or deadline expiries) trip a
// backend's circuit open for a cooldown; while open, attempts on that
// backend are refused up front — and, when the job spec allows it, a
// simulated-backend job falls back to the bit-identical host solve
// instead. After the cooldown a single probe attempt is let through
// (half-open); its success closes the circuit, its failure re-opens it
// for another cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test seam; nil = time.Now

	mu  sync.Mutex
	per map[string]*breakerState
}

type breakerState struct {
	consecutive int       // failures since the last success
	openUntil   time.Time // zero = closed
	probing     bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, per: make(map[string]*breakerState)}
}

func (b *breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *breaker) state(backend string) *breakerState {
	st := b.per[backend]
	if st == nil {
		st = &breakerState{}
		b.per[backend] = st
	}
	return st
}

// allow reports whether an attempt on the backend may run. An open
// circuit refuses attempts until its cooldown elapses, then admits one
// half-open probe at a time.
func (b *breaker) allow(backend string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.state(backend)
	if st.openUntil.IsZero() {
		return true
	}
	if b.clock().Before(st.openUntil) || st.probing {
		return false
	}
	st.probing = true
	return true
}

// success records a completed solve: the circuit closes.
func (b *breaker) success(backend string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.state(backend)
	st.consecutive = 0
	st.openUntil = time.Time{}
	st.probing = false
}

// failure records a genuine solve failure, returning true when it trips
// the circuit open (threshold reached, or a half-open probe failed).
// Failures while already open extend nothing and count no extra trip.
func (b *breaker) failure(backend string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.state(backend)
	st.consecutive++
	wasOpen := !st.openUntil.IsZero() && b.clock().Before(st.openUntil)
	if st.probing || (!wasOpen && st.consecutive >= b.threshold) {
		st.openUntil = b.clock().Add(b.cooldown)
		st.probing = false
		return true
	}
	return false
}

// open reports whether the backend's circuit is currently open.
func (b *breaker) open(backend string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.state(backend)
	return !st.openUntil.IsZero() && b.clock().Before(st.openUntil)
}
