package service

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/multiwafer"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// machineKey identifies a reusable simulated machine: everything that
// is baked into the built program — fabric shape, Z depth, stepping
// engine, wafer grid — but not the coefficients (swapped per job with
// LoadCoeff) or the right-hand side (re-initialized by every Solve).
type machineKey struct {
	backend             core.Backend // Wafer or MultiWafer
	nx, ny, nz, workers int
	grid                multiwafer.Topology // multiwafer only
}

// warmMachine is one pooled machine. Exactly one of wafer/cluster is
// set. For the single-wafer solver, pristine is the just-built machine
// capture: the Listing 1 FIFO pipeline's accumulation order is
// timing-dependent, so every checkout rewinds to it before loading the
// job's coefficients — bit-identical to a cold build (pinned by
// kernels.TestWarmSolverReuseBitIdentical). The multiwafer cluster's
// fixed program order is reuse-stable with LoadCoeff alone.
type warmMachine struct {
	key      machineKey
	mach     *wse.Machine
	wafer    *kernels.BiCGStabWSE
	pristine *wse.Snapshot
	cluster  *multiwafer.Cluster
}

func (w *warmMachine) close() {
	if w.mach != nil {
		w.mach.Close()
	}
	if w.cluster != nil {
		w.cluster.Close()
	}
}

// machineCache pools warm machines across jobs. Building a machine —
// routing tables, task programs, memory layout — dominates small-job
// latency; a cache hit reduces per-job setup to a snapshot restore plus
// a coefficient rewrite. Checked-out machines are not tracked: the
// caller must return them with put (or close them on build errors).
type machineCache struct {
	mu      sync.Mutex
	idle    map[machineKey][]*warmMachine
	idleN   int
	maxIdle int
	closed  bool

	hits, misses atomic.Int64
}

func newMachineCache(maxIdle int) *machineCache {
	if maxIdle <= 0 {
		maxIdle = 8
	}
	return &machineCache{idle: make(map[machineKey][]*warmMachine), maxIdle: maxIdle}
}

// checkout returns an idle machine for the key and prepares it for the
// operator: single-wafer machines rewind to their pristine capture,
// then both kinds load the job's coefficients. Returns nil on a miss —
// the caller builds cold and puts the machine back afterwards.
func (c *machineCache) checkout(key machineKey, op *stencil.Op7Half) (*warmMachine, error) {
	c.mu.Lock()
	list := c.idle[key]
	var w *warmMachine
	if n := len(list); n > 0 {
		w = list[n-1]
		c.idle[key] = list[:n-1]
		c.idleN--
	}
	c.mu.Unlock()
	if w == nil {
		c.misses.Add(1)
		return nil, nil
	}
	if w.wafer != nil {
		if err := w.wafer.Reset(w.pristine); err != nil {
			w.close()
			return nil, err
		}
		if err := w.wafer.LoadCoeff(op); err != nil {
			w.close()
			return nil, err
		}
	} else {
		if err := w.cluster.LoadCoeff(op); err != nil {
			w.close()
			return nil, err
		}
	}
	c.hits.Add(1)
	return w, nil
}

// put returns a machine to the pool, closing it instead if the pool is
// full or the cache is closed.
func (c *machineCache) put(w *warmMachine) {
	if w == nil {
		return
	}
	c.mu.Lock()
	if c.closed || c.idleN >= c.maxIdle {
		c.mu.Unlock()
		w.close()
		return
	}
	c.idle[w.key] = append(c.idle[w.key], w)
	c.idleN++
	c.mu.Unlock()
}

// stats returns the lifetime hit/miss counters.
func (c *machineCache) stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// close shuts down every idle machine's simulation pool. Machines
// checked out at close time are closed when put back.
func (c *machineCache) close() {
	c.mu.Lock()
	c.closed = true
	lists := c.idle
	c.idle = make(map[machineKey][]*warmMachine)
	c.idleN = 0
	c.mu.Unlock()
	for _, list := range lists {
		for _, w := range list {
			w.close()
		}
	}
}
