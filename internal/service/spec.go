package service

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/multiwafer"
	"repro/internal/stencil"
)

// JobSpec is the wire-format description of one solve job. It is fully
// deterministic: the spec alone re-creates the operator, the exact
// solution and the right-hand side, so a job can be re-run from its
// spooled spec after a crash and produce bit-identical results — the
// durability story needs no problem-data serialization.
//
// Problem generators match cmd/wsesim's, so `wsesim -problem momentum`
// and a {"problem":"momentum"} job solve the same system.
type JobSpec struct {
	// Problem selects the operator generator: "poisson", "momentum" or
	// "random". Empty means "momentum" (wsesim's default).
	Problem string `json:"problem,omitempty"`
	NX      int    `json:"nx"`
	NY      int    `json:"ny"`
	NZ      int    `json:"nz"`
	// Seed drives the synthetic exact solution x (b = A·x); 0 means 7,
	// the seed every CLI uses.
	Seed int64 `json:"seed,omitempty"`

	// Backend is "local", "wafer", "cluster" or "multiwafer". Empty
	// means "wafer" — this is a wafer-simulation service.
	Backend string `json:"backend,omitempty"`
	// MaxIter bounds the iterations; 0 means 200 (core.Solve's default).
	MaxIter int `json:"max_iter,omitempty"`
	// Tol is the relative-residual stop; 0 runs MaxIter iterations.
	Tol float64 `json:"tol,omitempty"`

	// TimeoutMS bounds the job's total lifetime in milliseconds,
	// measured from submission (so it survives daemon restarts): a job
	// whose deadline passes — queued or mid-solve — lands in the
	// terminal "expired" state. 0 means the server's default TTL, or no
	// deadline if none is configured.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// AllowFallback permits the service to solve this job on the host
	// in chunked-mixed precision when the simulated backend's circuit
	// breaker is open. For the multiwafer backend the fallback is
	// bit-identical to the simulated solve (the cross-backend
	// determinism contract); for the single-wafer FIFO engine it is
	// deterministic and equally accurate but may differ in last-place
	// bits. Wafer and multiwafer backends only.
	AllowFallback bool `json:"allow_fallback,omitempty"`

	// Precision is the local backend's arithmetic ("fp64", "fp32",
	// "mixed"); rejected on any other backend.
	Precision string `json:"precision,omitempty"`
	// Workers is the per-machine simulation worker count (wafer and
	// multiwafer backends only).
	Workers int `json:"workers,omitempty"`
	// Ranks is the cluster backend's goroutine-rank count.
	Ranks int `json:"ranks,omitempty"`
	// Grid is the multiwafer backend's wafer grid, "WxH".
	Grid string `json:"grid,omitempty"`
}

// maxMeshCells bounds accepted problem sizes: a full CS-1 fabric's
// 602×595 tiles at the paper's 3D mesh depth. Anything larger is a
// typo or a hostile request, not a reproduction workload.
const maxMeshCells = 602 * 595 * 128

// SpecError reports a single invalid JobSpec field, named by its JSON
// key so API clients can point at the offending request field.
type SpecError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *SpecError) Error() string {
	return fmt.Sprintf("service: invalid job spec field %q: %s", e.Field, e.Reason)
}

// withDefaults returns the spec with empty fields filled in; the
// returned spec is what the service persists and echoes back.
func (s JobSpec) withDefaults() JobSpec {
	if s.Problem == "" {
		s.Problem = "momentum"
	}
	if s.Backend == "" {
		s.Backend = "wafer"
	}
	if s.Seed == 0 {
		s.Seed = 7
	}
	return s
}

// Options maps the spec to validated core.Options. Misrouted fields —
// ranks on a wafer job, a grid on a local job — fail here with a
// *SpecError, before core.Options.Validate runs the backend-level
// checks; together the two validators reject every malformed request
// with a field-precise error.
func (s JobSpec) Options() (core.Options, error) {
	be, err := core.ParseBackend(s.Backend)
	if err != nil {
		return core.Options{}, &SpecError{"backend", err.Error()}
	}
	if s.NX <= 0 || s.NY <= 0 || s.NZ <= 0 {
		return core.Options{}, &SpecError{"nx", fmt.Sprintf("mesh dimensions must be positive, got %dx%dx%d", s.NX, s.NY, s.NZ)}
	}
	if n := s.NX * s.NY * s.NZ; n > maxMeshCells {
		return core.Options{}, &SpecError{"nx", fmt.Sprintf("mesh has %d cells; the service caps jobs at %d (one full wafer at depth 128)", n, maxMeshCells)}
	}
	switch s.Problem {
	case "poisson", "momentum", "random":
	default:
		return core.Options{}, &SpecError{"problem", fmt.Sprintf("unknown problem %q (want poisson, momentum or random)", s.Problem)}
	}
	if s.Precision != "" && be != core.Local {
		return core.Options{}, &SpecError{"precision", "only the local backend selects a precision (wafer arithmetic is always mixed fp16/fp32)"}
	}
	if s.Workers != 0 && be != core.Wafer && be != core.MultiWafer {
		return core.Options{}, &SpecError{"workers", "simulation workers apply to the wafer and multiwafer backends only"}
	}
	if s.Ranks != 0 && be != core.Cluster {
		return core.Options{}, &SpecError{"ranks", "goroutine-ranks apply to the cluster backend only"}
	}
	if s.Grid != "" && be != core.MultiWafer {
		return core.Options{}, &SpecError{"grid", "a wafer grid applies to the multiwafer backend only"}
	}
	if s.TimeoutMS < 0 {
		return core.Options{}, &SpecError{"timeout_ms", fmt.Sprintf("must be non-negative, got %d", s.TimeoutMS)}
	}
	if s.AllowFallback && be != core.Wafer && be != core.MultiWafer {
		return core.Options{}, &SpecError{"allow_fallback", "host fallback applies to the wafer and multiwafer backends only"}
	}
	if be == core.Wafer || be == core.MultiWafer {
		if s.NZ%2 != 0 {
			return core.Options{}, &SpecError{"nz", fmt.Sprintf("must be even on simulated backends (fp16 words stream in pairs), got %d", s.NZ)}
		}
	}

	o := core.Options{Backend: be, MaxIter: s.MaxIter, Tol: s.Tol}
	switch be {
	case core.Local:
		if s.Precision != "" {
			p, err := core.ParsePrecision(s.Precision)
			if err != nil {
				return core.Options{}, &SpecError{"precision", err.Error()}
			}
			o.Local.Precision = p
		}
	case core.Wafer:
		o.Wafer.Workers = s.Workers
	case core.Cluster:
		o.Cluster.Ranks = s.Ranks
	case core.MultiWafer:
		if s.Grid != "" {
			g, err := multiwafer.ParseTopology(s.Grid)
			if err != nil {
				return core.Options{}, &SpecError{"grid", err.Error()}
			}
			o.MultiWafer.Grid = g
		}
		o.MultiWafer.Workers = s.Workers
	}
	if err := o.Validate(); err != nil {
		return core.Options{}, err
	}
	return o, nil
}

// Validate checks the spec without building anything.
func (s JobSpec) Validate() error {
	_, err := s.withDefaults().Options()
	return err
}

// BuildProblem materializes the spec's linear system, exactly as
// cmd/wsesim does: generate the operator, synthesize an exact solution
// from the seed, and form b = A·x.
func (s JobSpec) BuildProblem() (core.Problem, error) {
	m := stencil.Mesh{NX: s.NX, NY: s.NY, NZ: s.NZ}
	var op *stencil.Op7
	switch s.Problem {
	case "poisson":
		op = stencil.Poisson(m, 1)
	case "random":
		op = stencil.RandomDiagDominant(m, 1.5, rand.New(rand.NewSource(1)))
	case "momentum":
		op = stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1, 0.1)
	default:
		return core.Problem{}, &SpecError{"problem", fmt.Sprintf("unknown problem %q", s.Problem)}
	}
	xe := make([]float64, m.N())
	rng := rand.New(rand.NewSource(s.Seed))
	for i := range xe {
		xe[i] = rng.Float64()
	}
	p, _ := core.NewProblem(op, xe)
	return p, nil
}
