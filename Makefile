# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands, so a green `make check bench-gate` locally predicts a green
# pipeline.

GO ?= go
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

# The benchmark sweep the regression gate runs: short mode keeps the
# paper-table benches cheap, 3 iterations per measurement, 6 repetitions
# so benchgate can take a stable median.
BENCH_FLAGS := -short -run '^$$' -bench . -benchtime 3x -count 6
GATE := 'Benchmark(FabricStep|MachineStep|SpMV2DMachine|StencilApply|Cavity2DWSEIteration|MultiWaferIteration|Snapshot|ServiceSolve|PaperScaleSolve)'

.PHONY: build test race check lint bench bench-baseline bench-gate fuzz profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build
	$(GO) vet ./...
	$(GO) test ./...

lint:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	@if command -v staticcheck >/dev/null; then staticcheck ./...; else echo "staticcheck not installed; skipping (CI runs it)"; fi
	@# Every internal package documents itself: go doc output must match
	@# what README/ARCHITECTURE claim (CONTRIBUTING.md "Documentation
	@# expectations"; CI lint runs the same check).
	@fail=0; for d in internal/*/; do \
		p=$$(basename "$$d"); \
		if ! grep -qs "^// Package $$p " "$$d"*.go; then \
			echo "missing package comment: internal/$$p"; fail=1; \
		fi; \
	done; exit $$fail

bench:
	$(GO) test $(BENCH_FLAGS) . | tee bench.txt

# Regenerate the committed baseline after an intentional performance
# change (run on the same class of machine CI uses, or expect the gate's
# threshold to absorb the difference). The sweep output goes to a temp
# dir so a baseline regen leaves no bench.txt detritus in the tree.
bench-baseline:
	tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) test $(BENCH_FLAGS) . | tee "$$tmp/bench.txt" && \
	$(GO) run ./cmd/benchgate -input "$$tmp/bench.txt" -write BENCH_BASELINE.json

# Compare the current tree against the committed baseline — the same
# command the bench-regression CI job runs.
bench-gate:
	$(GO) test $(BENCH_FLAGS) . | tee bench.txt
	$(GO) run ./cmd/benchgate -input bench.txt -baseline BENCH_BASELINE.json -gate $(GATE) -threshold 15 -out bench-new.json

fuzz:
	$(GO) test ./internal/fp16 -run '^$$' -fuzz FuzzFloat16RoundTrip -fuzztime 30s
	$(GO) test ./internal/fabric -run '^$$' -fuzz FuzzRouterDelivery -fuzztime 60s
	$(GO) test ./internal/wse -run '^$$' -fuzz FuzzMachineEquivalence -fuzztime 60s
	$(GO) test ./internal/wse -run '^$$' -fuzz FuzzSnapshotRoundTrip -fuzztime 30s
	$(GO) test ./internal/kernels -run '^$$' -fuzz FuzzSpMV2DEquivalence -fuzztime 60s
	$(GO) test ./internal/stencilc -run '^$$' -fuzz FuzzStencilcEquivalence -fuzztime 60s

# CPU + heap profile of the machine-step hot path (saturated 128×128,
# sequential engine) — the workflow that found wse.Core.step dominating
# machine cycles and motivated the event-driven scheduler; see README
# "Profiling". Inspect with `go tool pprof cpu.prof` / `mem.prof`.
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkMachineStep$$/^128x128$$/^seq$$' \
		-benchtime 300x -count 1 -cpuprofile cpu.prof -memprofile mem.prof .
	$(GO) tool pprof -top -nodecount 15 cpu.prof
