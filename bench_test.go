// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper (see DESIGN.md §4 and EXPERIMENTS.md). Derived
// quantities (cycles, ratios, plateaus) are attached with
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates every
// published artifact in one run.
package repro

import (
	"context"
	"net/http/httptest"
	"time"

	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/fp16"
	"repro/internal/kernels"
	"repro/internal/mfix"
	"repro/internal/multiwafer"
	"repro/internal/perfmodel"
	"repro/internal/service"
	"repro/internal/solver"
	"repro/internal/stencil"
	"repro/internal/stencilc"
	"repro/internal/tensor"
	"repro/internal/wse"
)

// BenchmarkFabricStep measures one cycle of the router simulator at
// saturation across fabric sizes, for the Sequential engine and the
// Sharded engine (persistent worker pool) at 8 workers. The sharded/seq
// ratio is the tentpole speedup; the pool's parallel gain requires a
// multi-core host to materialize, while the claim fast path and arena
// locality show up on any host. Sub-benchmark names are size/engine —
// the bench-regression CI gate keys on them (see cmd/benchgate).
func BenchmarkFabricStep(b *testing.B) {
	sizes := []int{16, 32, 64, 128}
	if testing.Short() {
		// 128×128 stays in short mode: it is the gate's headline entry.
		sizes = []int{16, 32, 128}
	}
	for _, size := range sizes {
		for _, eng := range []struct {
			name string
			mk   func() fabric.Stepper
		}{
			{"seq", fabric.Sequential},
			{"sharded", func() fabric.Stepper { return fabric.Sharded(8) }},
		} {
			b.Run(fmt.Sprintf("%dx%d/%s", size, size, eng.name), func(b *testing.B) {
				f := fabric.New(fabric.Config{W: size, H: size, Stepper: eng.mk()})
				defer f.Close()
				fabric.BuildFlows(f)
				for warm := 0; warm < 2*size; warm++ {
					fabric.DriveFlows(f)
				}
				moves0 := f.Moves()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fabric.DriveFlows(f)
				}
				b.StopTimer()
				b.ReportMetric(float64(f.Moves()-moves0)/float64(b.N), "words-moved/cycle")
			})
		}
	}
}

// spinInstr is a never-completing one-lane instruction: launched on a
// thread it keeps its core permanently on the runnable worklist, so a
// machine full of them measures the per-active-core scheduling and
// datapath cost with no idle-skip help.
type spinInstr struct{}

func (spinInstr) Step(c *wse.Core, lanes int) int {
	if lanes > 0 {
		return 1
	}
	return 0
}
func (spinInstr) Done() bool { return false }

// benchMachineStep runs one machine-cycle sub-benchmark per (size,
// engine) pair. Sub-names must not end in "-<digits>": `go test`
// appends a -GOMAXPROCS suffix only on multi-core hosts, and
// cmd/benchgate strips one trailing -N to make baselines portable — a
// literal "sharded-8" would be corrupted on one side of that
// comparison. Paper-scale entries run one engine to keep the gated
// sweep bounded.
func benchMachineStep(b *testing.B, sizes [][2]int, setup func(*wse.Machine)) {
	for _, size := range sizes {
		for _, workers := range []int{0, 8} {
			name := "seq"
			if workers > 1 {
				name = "sharded"
			}
			if size[0] > 256 && workers > 1 {
				continue
			}
			b.Run(fmt.Sprintf("%dx%d/%s", size[0], size[1], name), func(b *testing.B) {
				cfg := wse.CS1(size[0], size[1])
				cfg.Workers = workers
				mach := wse.New(cfg)
				defer mach.Close()
				if setup != nil {
					setup(mach)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mach.Step()
				}
			})
		}
	}
}

// BenchmarkMachineStep measures a full machine cycle (cores + routers)
// with every core saturated (a live thread on each tile), seq vs
// sharded — the per-active-core path every wafer kernel simulation pays
// per cycle. The 602x595 entry is the paper's full wafer: ~358k active
// cores per cycle, steppable since scheduling went event-driven.
func BenchmarkMachineStep(b *testing.B) {
	sizes := [][2]int{{32, 32}, {64, 64}, {128, 128}, {602, 595}}
	if testing.Short() {
		// 128×128 and the paper-scale wafer stay in short mode: they are
		// the gate's headline entries.
		sizes = [][2]int{{32, 32}, {128, 128}, {602, 595}}
	}
	benchMachineStep(b, sizes, func(mach *wse.Machine) {
		for _, tl := range mach.Tiles {
			tl.Core.LaunchThread(0, "spin", spinInstr{}, nil)
		}
	})
}

// BenchmarkMachineStepBatched measures a full machine cycle on the
// workload the batched engine targets: every core perpetually running
// the same homogeneous vector task (axpy + copy over 32-element arena
// vectors, re-armed on completion), so each cycle is one or two
// equivalence classes fabric-wide. The seq sub-benchmark is the scalar
// interpreter paying full per-core dispatch on the identical workload —
// the batched/seq ratio is the dispatch amortization. Results are
// bit-identical (difftest pins it); this measures host throughput only.
// Only 128×128 is gated: at 602×595 the 358k-core working set exceeds
// the LLC, both engines go memory-bound and the ratio is noise — the
// paper-scale win is the fast-forward jump, gated by
// BenchmarkPaperScaleSolve.
func BenchmarkMachineStepBatched(b *testing.B) {
	sizes := [][2]int{{128, 128}, {602, 595}}
	if testing.Short() {
		sizes = [][2]int{{128, 128}}
	}
	for _, size := range sizes {
		for _, eng := range []wse.Engine{wse.EngineSequential, wse.EngineBatched} {
			b.Run(fmt.Sprintf("%dx%d/%s", size[0], size[1], eng), func(b *testing.B) {
				cfg := wse.CS1(size[0], size[1])
				cfg.Engine = eng
				mach := wse.New(cfg)
				defer mach.Close()
				const n = 32
				for _, tl := range mach.Tiles {
					x := tl.Arena.MustAlloc("x", n)
					y := tl.Arena.MustAlloc("y", n)
					for k := 0; k < n; k++ {
						tl.Arena.Set(x+k, fp16.FromFloat64(float64(k%7)*0.125))
						tl.Arena.Set(y+k, fp16.FromFloat64(float64(k%5)*0.25))
					}
					ax := &wse.MemOp{Kind: wse.OpAxpy, Arena: tl.Arena,
						Dst: tensor.Vec1D(y, n), A: tensor.Vec1D(x, n)}
					cp := &wse.MemOp{Kind: wse.OpCopy, Arena: tl.Arena,
						Dst: tensor.Vec1D(x, n), A: tensor.Vec1D(y, n)}
					task := &wse.Task{Name: "axpy", Instrs: []wse.Instr{ax, cp}}
					task.OnComplete = func(c *wse.Core) {
						ax.Reset()
						cp.Reset()
						c.Activate(task)
					}
					tl.Core.Activate(tl.Core.AddTask(task))
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mach.Step()
				}
			})
		}
	}
}

// BenchmarkPaperScaleSolve measures the solve the hybrid fast-forward
// engine makes interactive: a 2-iteration BiCGStab on the 7-point heat
// system through the public core.SolveStar facade, wafer backend,
// -engine fastforward. In short mode (the bench-regression gate's
// configuration) it runs a 60×50 fabric; the full `make bench` sweep
// runs the paper's 602×595 extent, the same shape
// TestPaperScaleBiCGStab holds under 60 s in CI.
func BenchmarkPaperScaleSolve(b *testing.B) {
	nx, ny, nz := 602, 595, 4
	if testing.Short() {
		nx, ny = 60, 50
	}
	m := stencil.Mesh{NX: nx, NY: ny, NZ: nz}
	op := stencil.Heat3D(m, 0.1, stencil.Dirichlet)
	bv := make([]float64, m.N())
	for i := range bv {
		bv[i] = float64((i%23)-11) / 28
	}
	opts := core.Options{Backend: core.Wafer, MaxIter: 2, Tol: 0,
		Wafer: core.WaferOptions{Engine: "fastforward"}}
	b.Run(fmt.Sprintf("%dx%dx%d/fastforward", nx, ny, nz), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.SolveStar(core.StarProblem{Op: op, B: bv}, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Iterations != 2 {
				b.Fatalf("solve ran %d iterations, want 2", res.Iterations)
			}
		}
	})
}

// BenchmarkMachineStepIdle measures a machine cycle on a fully
// quiescent fabric — no tasks, no threads, no in-flight words. With
// event-driven core scheduling this is the "idle tiles are free" path:
// cost is O(engine shards), not O(cores), which is what makes the
// bursty phases of the paper's programs (AllReduce waits, scalar
// phases) cheap at any fabric size.
func BenchmarkMachineStepIdle(b *testing.B) {
	benchMachineStep(b, [][2]int{{128, 128}, {602, 595}}, nil)
}

// BenchmarkSpMV2DMachine measures one application of the wafer-resident
// 2D block-halo SpMV (the §IV-2 mapping under cycle simulation): host
// time per application plus the simulated cycle count. Sub-names are
// size/engine, matching the bench-regression gate's naming convention
// (no trailing -<digits>; see benchMachineStep).
func BenchmarkSpMV2DMachine(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	for _, tc := range []struct{ tiles, blk int }{{8, 4}, {16, 4}} {
		m := stencil.Mesh2D{NX: tc.tiles * tc.blk, NY: tc.tiles * tc.blk}
		norm, _ := stencil.Random9(m, 1.4, rng).Normalize9()
		src := make([]fp16.Float16, m.N())
		for i := range src {
			src[i] = fp16.FromFloat64(float64(i%13)/13 - 0.5)
		}
		for _, workers := range []int{0, 8} {
			name := "seq"
			if workers > 1 {
				name = "sharded"
			}
			b.Run(fmt.Sprintf("%dx%db%d/%s", tc.tiles, tc.tiles, tc.blk, name), func(b *testing.B) {
				cfg := wse.CS1(tc.tiles, tc.tiles)
				cfg.Workers = workers
				mach := wse.New(cfg)
				defer mach.Close()
				p, err := kernels.NewSpMV2DMachine(mach, norm, tc.blk)
				if err != nil {
					b.Fatal(err)
				}
				var cycles int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.LoadVector(src)
					c, err := p.Run(1 << 22)
					if err != nil {
						b.Fatal(err)
					}
					cycles = c
				}
				b.ReportMetric(float64(cycles), "sim-cycles/application")
			})
		}
	}
}

// BenchmarkStencilApply measures one application of the stencil
// compiler's programs under cycle simulation: the 25-point width-4
// seismic operator (the multi-round halo relay), the 7-point heat step
// with its Σu² reduction (the paper's width-1 halo pipeline), and the
// 2D 5-point heat step on the block-halo mapping. Each iteration is one
// Program Run on a warm machine; the simulated cycle count rides along
// as a metric (it is separately pinned, exactly, against
// perfmodel.StencilApply3D/2D). Sub-names are kernel/engine — the
// bench-regression gate keys on them (no trailing -<digits>; see
// benchMachineStep).
func BenchmarkStencilApply(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	m := stencil.Mesh{NX: 4, NY: 4, NZ: 16}
	src := make([]fp16.Float16, m.N())
	for i := range src {
		src[i] = fp16.FromFloat64(rng.Float64()*2 - 1)
	}
	for _, tc := range []struct {
		name string
		spec stencilc.Spec
		op   *stencil.OpStar
	}{
		{"seismic25", stencilc.SpecSeismic25(), stencil.Seismic25(m, 0.08)},
		{"heat", stencilc.SpecHeat3D(), stencil.Heat3D(m, 0.2, stencil.Dirichlet)},
	} {
		norm, _ := tc.op.Normalize()
		half := stencil.NewOpStarHalf(norm)
		for _, workers := range []int{0, 8} {
			name := "seq"
			if workers > 1 {
				name = "sharded"
			}
			b.Run(tc.name+"/"+name, func(b *testing.B) {
				cfg := wse.CS1(m.NX, m.NY)
				cfg.Workers = workers
				mach := wse.New(cfg)
				defer mach.Close()
				p, err := stencilc.Compile3D(mach, tc.spec, half, 0, 0, 0)
				if err != nil {
					b.Fatal(err)
				}
				var cycles int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for t := 0; t < p.Tiles(); t++ {
						gx, gy := p.GlobalCoord(t)
						col := p.Iterate(t)
						for z := 0; z < m.NZ; z++ {
							col[z] = src[m.Index(gx, gy, z)]
						}
					}
					c, err := p.Run(1 << 22)
					if err != nil {
						b.Fatal(err)
					}
					cycles = c
				}
				b.ReportMetric(float64(cycles), "sim-cycles/application")
			})
		}
	}

	const blk = 4
	m2 := stencil.Mesh2D{NX: 4 * blk, NY: 4 * blk}
	op9, _ := stencil.Heat2D(m2, 0.2).Normalize9()
	src2 := make([]fp16.Float16, m2.N())
	for i := range src2 {
		src2[i] = fp16.FromFloat64(rng.Float64()*2 - 1)
	}
	for _, workers := range []int{0, 8} {
		name := "seq"
		if workers > 1 {
			name = "sharded"
		}
		b.Run("heat2d/"+name, func(b *testing.B) {
			cfg := wse.CS1(m2.NX/blk, m2.NY/blk)
			cfg.Workers = workers
			mach := wse.New(cfg)
			defer mach.Close()
			p, err := stencilc.Compile2D(mach, stencilc.SpecHeat2D(), op9, blk, 0)
			if err != nil {
				b.Fatal(err)
			}
			var cycles int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.LoadVector(src2)
				c, err := p.Run(1 << 22)
				if err != nil {
					b.Fatal(err)
				}
				cycles = c
			}
			b.ReportMetric(float64(cycles), "sim-cycles/application")
		})
	}
}

// BenchmarkCavity2DWSEIteration measures one SIMPLE iteration of the 2D
// cavity with the pressure-correction BiCGStab cycle-simulated on an
// 8×8 fabric — the cavity-on-wafer hot path (host momentum solves plus
// 20 wafer solver iterations per sweep).
func BenchmarkCavity2DWSEIteration(b *testing.B) {
	for _, workers := range []int{0, 8} {
		name := "seq"
		if workers > 1 {
			name = "sharded"
		}
		b.Run("16x16b2/"+name, func(b *testing.B) {
			cfg := wse.CS1(8, 8)
			cfg.Workers = workers
			mach := wse.New(cfg)
			defer mach.Close()
			c := mfix.NewCavity2D(16, 100)
			c.Pressure = kernels.NewWafer2DBackend(mach, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			be := c.Pressure.(*kernels.Wafer2DBackend)
			b.ReportMetric(float64(be.Cycles.Total())/float64(be.Solves), "sim-cycles/pressure-solve")
		})
	}
}

// BenchmarkMultiWaferIteration measures BiCGStab iterations on the
// cluster-of-wafers backend — per-tile phases, the on-wafer AllReduce,
// and (on the 2x1 grid) the host-side edge-I/O halo shipping plus the
// exactly rounded two-level combine. Gated by the bench-regression CI
// job: the host cost of the multiwafer hot path (phase dispatch, halo
// copies, exact combine) must not silently regress.
func BenchmarkMultiWaferIteration(b *testing.B) {
	m := stencil.Mesh{NX: 8, NY: 8, NZ: 16}
	op := stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1, 0.1)
	norm, diag := op.Normalize()
	h := stencil.NewOp7Half(norm)
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = 0.5 + float64(i%3)*0.1
	}
	b64 := make([]float64, m.N())
	op.Apply(b64, xe)
	b16 := fp16.FromFloat64Slice(stencil.ScaleRHS(b64, diag))

	for _, grid := range []multiwafer.Topology{{W: 1, H: 1}, {W: 2, H: 1}} {
		b.Run(grid.String(), func(b *testing.B) {
			c, err := multiwafer.New(multiwafer.Config{Grid: grid}, h)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			var perIter float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := c.Solve(b16, kernels.WSEOptions{MaxIter: 2})
				if err != nil {
					b.Fatal(err)
				}
				perIter = float64(st.PerIteration.Total())
			}
			b.ReportMetric(perIter, "sim-cycles/iter")
		})
	}
}

// BenchmarkTable1_OperationCounts measures one mixed-precision BiCGStab
// iteration and reports the Table I operation counts per meshpoint.
func BenchmarkTable1_OperationCounts(b *testing.B) {
	m := stencil.Mesh{NX: 8, NY: 8, NZ: 16}
	op := stencil.RandomDiagDominant(m, 1.5, rand.New(rand.NewSource(1)))
	norm, diag := op.Normalize()
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = float64(i%5) - 2
	}
	b64 := make([]float64, m.N())
	op.Apply(b64, xe)
	sb := stencil.ScaleRHS(b64, diag)

	ctx := solver.NewMixed()
	a := ctx.NewOperator(norm)
	bv := ctx.NewVector(m.N())
	for i, v := range sb {
		bv.Set(i, v)
	}
	// Differencing 3-iteration and 1-iteration runs isolates the
	// steady-state per-iteration cost from the r0 setup.
	runN := func(iters int) solver.OpCounts {
		xv := ctx.NewVector(m.N())
		ctx.Counters().Reset()
		if _, err := solver.BiCGStab(ctx, a, bv, xv, solver.Options{MaxIter: iters}); err != nil {
			b.Fatal(err)
		}
		return ctx.Counters().Totals()
	}
	var c1, c3 solver.OpCounts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c1 = runN(1)
		c3 = runN(3)
	}
	n := float64(m.N())
	b.ReportMetric(float64(c3.HPAdd-c1.HPAdd)/2/n, "HP+/pt(paper=18)")
	b.ReportMetric(float64(c3.HPMul-c1.HPMul)/2/n, "HPx/pt(paper=22)")
	b.ReportMetric(float64(c3.SPAdd-c1.SPAdd)/2/n, "SP+/pt(paper=4)")
}

// BenchmarkSectionV_WSEIteration cycle-simulates wafer BiCGStab
// iterations and reports the per-iteration cycle count plus the
// calibrated extrapolation to the paper's 600×595×1536 headline.
func BenchmarkSectionV_WSEIteration(b *testing.B) {
	m := stencil.Mesh{NX: 8, NY: 8, NZ: 64}
	op := stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1, 0.1)
	norm, diag := op.Normalize()
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = 0.5 + float64(i%3)*0.1
	}
	b64 := make([]float64, m.N())
	op.Apply(b64, xe)
	sb := stencil.ScaleRHS(b64, diag)
	b16 := fp16.FromFloat64Slice(sb)

	var perIter float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mach := wse.New(wse.CS1(m.NX, m.NY))
		w, err := kernels.NewBiCGStabWSE(mach, stencil.NewOp7Half(norm))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		_, st, err := w.Solve(b16, kernels.WSEOptions{MaxIter: 3})
		if err != nil {
			b.Fatal(err)
		}
		perIter = float64(st.PerIteration.Total())
	}
	b.ReportMetric(perIter, "sim-cycles/iter")
	us, pf, _ := perfmodel.HeadlinePrediction(perfmodel.PaperModel())
	b.ReportMetric(us, "headline-µs/iter(paper=28.1)")
	b.ReportMetric(pf, "headline-PFLOPS(paper=0.86)")
}

// BenchmarkAllReduce_Latency cycle-simulates the Figure 6 AllReduce and
// reports latency versus the fabric diameter plus the full-wafer
// extrapolation (paper: < 1.5 µs).
func BenchmarkAllReduce_Latency(b *testing.B) {
	mach := wse.New(wse.CS1(48, 48))
	ar, err := kernels.NewAllReduce(mach, 0)
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]float32, 48*48)
	for i := range vals {
		vals[i] = float32(i % 11)
	}
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ar.Run(vals, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles(48x48)")
	b.ReportMetric(float64(cycles)/float64(48+48-2), "cycles/diameter")
	b.ReportMetric(perfmodel.CS1().AllReduceSeconds()*1e6, "wafer-µs(paper<1.5)")
}

// BenchmarkFigure7_ClusterScaling370 evaluates the Joule model over the
// published sweep for the 370³ mesh, with a live rank-parallel solve as
// the measured workload. The key published shape: scaling stalls beyond
// 8K cores.
func BenchmarkFigure7_ClusterScaling370(b *testing.B) {
	benchScaling(b, cluster.Fig7Mesh)
}

// BenchmarkFigure8_ClusterScaling600 is the 600³ series: 75 ms at 1,024
// cores scaling to ~6 ms at 16,384 — ~214× slower than the CS-1.
func BenchmarkFigure8_ClusterScaling600(b *testing.B) {
	benchScaling(b, cluster.Fig8Mesh)
}

func benchScaling(b *testing.B, mesh stencil.Mesh) {
	cfg := cluster.Joule()
	// Measured part: a real 8-rank goroutine solve of a reduced mesh.
	m := stencil.Mesh{NX: 16, NY: 16, NZ: 16}
	norm, _ := stencil.ConvectionDiffusion(m, 0.2, [3]float64{1, -0.3, 0.2}, 0.25).Normalize()
	rhs := make([]float64, m.N())
	rng := rand.New(rand.NewSource(4))
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cluster.ParallelBiCGStab(norm, rhs, 8, 10, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	pts := cluster.StrongScaling(cfg, mesh, cluster.PublishedCores)
	for _, p := range pts {
		b.ReportMetric(p.Seconds*1e3, "model-ms@"+itoa(p.Cores))
	}
	b.ReportMetric(pts[3].Seconds/pts[4].Seconds, "gain-8K-to-16K")
}

func itoa(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return strconv.Itoa(n/1024) + "K"
	}
	return strconv.Itoa(n)
}

// BenchmarkFigure9_MixedPrecisionResidual runs the precision study and
// reports the final residuals of both arithmetics: fp32 keeps
// converging; mixed plateaus near fp16 ε (paper: ~1e-2).
func BenchmarkFigure9_MixedPrecisionResidual(b *testing.B) {
	var series []core.Fig9Series
	for i := 0; i < b.N; i++ {
		series = core.Fig9Experiment(20, 80, 20, 15)
	}
	f32 := series[0].History
	mx := series[1].History
	b.ReportMetric(f32[len(f32)-1], "fp32-final-residual")
	b.ReportMetric(mx[len(mx)-1], "mixed-plateau(paper~1e-2)")
}

// BenchmarkTable2_SimpleCycles runs real SIMPLE iterations on the cavity
// (the measured part) and reports the Table II projection: 80–125
// timesteps/s on the CS-1 at 600³.
func BenchmarkTable2_SimpleCycles(b *testing.B) {
	c := mfix.NewCavity(8, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	pr := mfix.ProjectCS1(perfmodel.PaperModel(), 600, 600, 600, mfix.PaperSimpleParams())
	b.ReportMetric(pr.StepsPerSecond.Min, "steps/s-min(paper=80)")
	b.ReportMetric(pr.StepsPerSecond.Max, "steps/s-max(paper=125)")
	joule := mfix.JouleTimestepSeconds(cluster.Joule(), cluster.Fig8Mesh, 16384, mfix.PaperSimpleParams())
	mid := (pr.StepSeconds.Min + pr.StepSeconds.Max) / 2
	b.ReportMetric(joule/mid, "speedup-vs-16K-Joule(paper>200)")
}

// Benchmark2D_SpMVEfficiency runs the 2D block-halo SpMV and reports the
// measured redundant-work overhead against the analytic model (paper:
// < 20% at 8×8 blocks, max block 38×38).
func Benchmark2D_SpMVEfficiency(b *testing.B) {
	m := stencil.Mesh2D{NX: 64, NY: 64}
	norm, _ := stencil.Poisson9(m, 1).Normalize9()
	p, err := kernels.NewSpMV2D(norm, 8)
	if err != nil {
		b.Fatal(err)
	}
	src := make([]fp16.Float16, m.N())
	for i := range src {
		src[i] = fp16.FromFloat64(float64(i%13) / 13)
	}
	dst := make([]fp16.Float16, m.N())
	b.SetBytes(int64(m.N() * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Apply(dst, src)
	}
	b.StopTimer()
	b.ReportMetric(100*perfmodel.Overhead2D(8), "model-overhead-%(b=8)")
	b.ReportMetric(float64(perfmodel.MaxBlock2D(48*1024)), "max-block(paper=38)")
}

// BenchmarkFigure1_MachineBalance regenerates the machine-balance table
// and reports the CS-1's advantage over the 2016-era node.
func BenchmarkFigure1_MachineBalance(b *testing.B) {
	var entries []perfmodel.BalanceEntry
	for i := 0; i < b.N; i++ {
		entries = perfmodel.MachineBalance()
	}
	var cs1, xeon perfmodel.BalanceEntry
	for _, e := range entries {
		if e.WaferScale {
			cs1 = e
		}
		if e.Year == 2016 {
			xeon = e
		}
	}
	b.ReportMetric(xeon.FlopsPerWordMemory/cs1.FlopsPerWordMemory, "memory-balance-advantage")
	b.ReportMetric(xeon.FlopsPerWordNetwork/cs1.FlopsPerWordNetwork, "network-balance-advantage")
}

// BenchmarkSpMV3D_WaferKernel measures the cycle-level Listing 1 SpMV
// itself: simulated cycles per z-element (the performance model's 3.0
// coefficient) and host-side simulation throughput.
func BenchmarkSpMV3D_WaferKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := stencil.Mesh{NX: 8, NY: 8, NZ: 64}
	norm, _ := stencil.RandomDiagDominant(m, 1.5, rng).Normalize()
	h := stencil.NewOp7Half(norm)
	mach := wse.New(wse.CS1(m.NX, m.NY))
	p, err := kernels.NewSpMV3D(mach, h)
	if err != nil {
		b.Fatal(err)
	}
	v := make([]fp16.Float16, m.N())
	for i := range v {
		v[i] = fp16.FromFloat64(rng.Float64())
	}
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.LoadVector(v)
		c, err := p.Run(1 << 22)
		if err != nil {
			b.Fatal(err)
		}
		cycles = c
	}
	b.ReportMetric(float64(cycles)/float64(m.NZ), "sim-cycles/z-elem")
}

// BenchmarkAblation_AllReduceVsTree compares the paper's row/column
// AllReduce latency model with an idealized binary-tree reduction
// (2·log₂N hops·avg-distance), quantifying why the mesh-aligned pattern
// wins on a 2D fabric.
func BenchmarkAblation_AllReduceVsTree(b *testing.B) {
	w := perfmodel.CS1()
	var rowcol float64
	for i := 0; i < b.N; i++ {
		rowcol = w.AllReduceCycles()
	}
	// A binary tree over 2D mesh still pays total wire delay ≥ diameter
	// per direction, plus log-depth serialization at each level.
	lg := 18.45                       // log2(602*595)
	tree := float64(w.W+w.H-2) + lg*4 // per-level handshake cost
	b.ReportMetric(rowcol, "rowcol-cycles")
	b.ReportMetric(tree, "tree-cycles-ideal")
	b.ReportMetric(tree/rowcol, "tree/rowcol")
}

// BenchmarkAblation_FusedReductions quantifies the communication-hiding
// variant the paper declined (§IV-3): fusing the two ω reductions into
// one AllReduce wave. Runs the sequential fused solver (bit-identical
// numerics) and reports the modelled headline saving.
func BenchmarkAblation_FusedReductions(b *testing.B) {
	m := stencil.Mesh{NX: 8, NY: 8, NZ: 16}
	op := stencil.RandomDiagDominant(m, 1.5, rand.New(rand.NewSource(6)))
	norm, diag := op.Normalize()
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = float64(i % 3)
	}
	rhs := make([]float64, m.N())
	op.Apply(rhs, xe)
	sb := stencil.ScaleRHS(rhs, diag)
	ctx := solver.NewF64()
	a := ctx.NewOperator(norm)
	bv := ctx.NewVector(m.N())
	for i, v := range sb {
		bv.Set(i, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xv := ctx.NewVector(m.N())
		if _, err := solver.BiCGStabFused(ctx, a, bv, xv, solver.Options{MaxIter: 10}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*perfmodel.ReductionHidingSavings(perfmodel.PaperModel()), "headline-saving-%")
}

// BenchmarkAblation_ZSweep evaluates the paper's "effect of changing
// mesh size and shape" prediction: iteration time and PFLOPS across Z at
// full fabric (throughput improves with Z as the AllReduce amortizes,
// bounded by the 48 KB capacity at Z≈2457).
func BenchmarkAblation_ZSweep(b *testing.B) {
	var pts []perfmodel.ShapePoint
	for i := 0; i < b.N; i++ {
		pts = perfmodel.ShapeSweep(perfmodel.PaperModel(), []int{256, 512, 1024, 1536, 2048})
	}
	for _, p := range pts {
		b.ReportMetric(p.PFLOPS, "PFLOPS@Z="+strconv.Itoa(p.Z))
	}
	b.ReportMetric(float64(perfmodel.MaxZ(48*1024)), "maxZ-capacity")
}

// BenchmarkAblation_FIFODepth sweeps the SpMV FIFO depth (paper uses 20)
// and reports the cycle cost at depth 4 relative to 20 — the stall
// sensitivity of the producer/consumer decoupling.
func BenchmarkAblation_FIFODepth(b *testing.B) {
	// The FIFO depth is a compile-time constant of the kernel; the sweep
	// uses the queue-depth knob of the fabric, which throttles the same
	// producer/consumer path.
	rng := rand.New(rand.NewSource(9))
	m := stencil.Mesh{NX: 6, NY: 6, NZ: 64}
	norm, _ := stencil.RandomDiagDominant(m, 1.5, rng).Normalize()
	h := stencil.NewOp7Half(norm)
	v := make([]fp16.Float16, m.N())
	for i := range v {
		v[i] = fp16.FromFloat64(rng.Float64())
	}
	run := func(queueDepth int) float64 {
		cfg := wse.CS1(m.NX, m.NY)
		cfg.QueueDepth = queueDepth
		mach := wse.New(cfg)
		p, err := kernels.NewSpMV3D(mach, h)
		if err != nil {
			b.Fatal(err)
		}
		p.LoadVector(v)
		c, err := p.Run(1 << 22)
		if err != nil {
			b.Fatal(err)
		}
		return float64(c)
	}
	var shallow, deep float64
	for i := 0; i < b.N; i++ {
		shallow = run(1)
		deep = run(8)
	}
	b.ReportMetric(shallow, "cycles-depth1")
	b.ReportMetric(deep, "cycles-depth8")
	b.ReportMetric(shallow/deep, "depth1/depth8")
}

// BenchmarkSnapshot measures the checkpoint path — Snapshot, binary
// encode, decode, Restore — on a loaded 128×128 wafer (256 arena words
// on each of the 16k tiles, the footprint class of the 2D cavity's
// pressure solver). This is the per-checkpoint cost a crash-recoverable
// solve pays every -checkpoint-every iterations; the bench-regression
// gate keys on the sub-name.
func BenchmarkSnapshot(b *testing.B) {
	mach := wse.New(wse.CS1(128, 128))
	defer mach.Close()
	const words = 256
	for i, tl := range mach.Tiles {
		base := tl.Arena.MustAlloc("v", words)
		for k := 0; k < words; k++ {
			tl.Arena.Set(base+k, fp16.FromFloat64(float64((i+k)%97)*0.25))
		}
	}
	b.Run("128x128/roundtrip", func(b *testing.B) {
		var blobLen int
		for i := 0; i < b.N; i++ {
			snap, err := mach.Snapshot()
			if err != nil {
				b.Fatal(err)
			}
			blob, err := snap.MarshalBinary()
			if err != nil {
				b.Fatal(err)
			}
			dec, err := wse.UnmarshalSnapshot(blob)
			if err != nil {
				b.Fatal(err)
			}
			if err := mach.Restore(dec); err != nil {
				b.Fatal(err)
			}
			blobLen = len(blob)
		}
		b.ReportMetric(float64(blobLen), "snapshot-bytes")
	})
}

// BenchmarkServiceSolve measures the wsesimd job API end to end: an
// in-process daemon (4 solve workers, warm machine cache) driven by the
// ssbench load engine over real HTTP. full-write submits a wafer solve
// and polls it to completion per operation; mixed is the read-mostly
// profile (status reads against a 20% submit stream). The cache is
// pre-warmed so the steady state — snapshot rewind + coefficient load
// instead of a machine build per job — is what the regression gate
// tracks; QPS and mean per-class latency ride along as metrics.
func BenchmarkServiceSolve(b *testing.B) {
	spec := service.JobSpec{Problem: "momentum", NX: 4, NY: 4, NZ: 8, Backend: "wafer", MaxIter: 4}
	for _, mix := range []service.LoadMix{service.MixFullWrite, service.MixReadWrite} {
		b.Run(string(mix), func(b *testing.B) {
			s, err := service.New(service.Config{Workers: 4})
			if err != nil {
				b.Fatal(err)
			}
			s.Start()
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				s.Shutdown(ctx)
			}()
			if _, err := service.RunLoad(service.LoadOptions{
				BaseURL: ts.URL, Mix: service.MixFullWrite, Concurrency: 4, Ops: 8, Spec: spec,
			}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			st, err := service.RunLoad(service.LoadOptions{
				BaseURL: ts.URL, Mix: mix, Concurrency: 4, Ops: b.N, Spec: spec,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(st.QPS, "qps")
			if st.Writes.Count > 0 {
				b.ReportMetric(float64(st.Writes.Avg.Nanoseconds()), "solve-avg-ns")
			}
			if st.Reads.Count > 0 {
				b.ReportMetric(float64(st.Reads.Avg.Nanoseconds()), "read-avg-ns")
			}
		})
	}
}
