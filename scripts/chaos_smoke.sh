#!/usr/bin/env bash
# Chaos smoke of the wsesimd daemon (CI runs this; it also works
# locally): cancel a running job over DELETE, expire a job on its
# timeout_ms deadline, kill -9 the daemon mid-solve and verify the
# restarted daemon re-runs the job to a result identical to an
# uninterrupted reference, quarantine a corrupt spool record, survive
# injected spool-write faults, and drive the cancel mix with ssbench.
# Needs only curl + grep.
set -euo pipefail
cd "$(dirname "$0")/.."

addr=127.0.0.1:18932
base="http://$addr"
spool=$(mktemp -d)
log=$(mktemp)
bin=$(mktemp -d)/wsesimd
pid=""

cleanup() {
  if [ -n "$pid" ]; then
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  fi
  rm -rf "$spool" "$log" "$(dirname "$bin")"
}
trap cleanup EXIT

fail() { echo "chaos_smoke: FAIL: $*" >&2; echo "--- daemon log ---" >&2; cat "$log" >&2; exit 1; }

wait_ready() {
  for _ in $(seq 1 100); do
    curl -sf "$base/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  fail "daemon never became ready"
}

start_daemon() {
  "$bin" -addr "$addr" -spool "$spool" -workers 2 "$@" >>"$log" 2>&1 &
  pid=$!
  wait_ready
}

submit() { # submit <json-spec> -> job id
  curl -sf "$base/v1/jobs" -d "$1" | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4
}

job_state() { curl -sf "$base/v1/jobs/$1" | grep -o '"state":"[^"]*"' | cut -d'"' -f4; }

wait_state() { # wait_state <id> <state> [tries]
  local st=""
  for _ in $(seq 1 "${3:-600}"); do
    st=$(job_state "$1")
    [ "$st" = "$2" ] && return 0
    case "$st" in failed) fail "job $1 failed waiting for $2";; esac
    sleep 0.1
  done
  fail "job $1 stuck in state $st, want $2"
}

metric() { curl -sf "$base/metrics" | grep -F "$1" | grep -v '^#' | head -1 | awk '{print $NF}'; }

go build -o "$bin" ./cmd/wsesimd
longspec='{"problem":"momentum","nx":8,"ny":8,"nz":32,"max_iter":100}'

start_daemon

# --- 1. uninterrupted reference solve -------------------------------
ref=$(submit "$longspec")
[ -n "$ref" ] || fail "reference submit returned no id"
wait_state "$ref" done
refsol=$(mktemp)
curl -sf "$base/v1/jobs/$ref/solution" >"$refsol" || fail "reference solution fetch failed"

# --- 2. cancel a running job over DELETE ----------------------------
vic=$(submit "$longspec")
[ -n "$vic" ] || fail "cancel-victim submit returned no id"
for _ in $(seq 1 200); do
  iter=$(curl -sf "$base/v1/jobs/$vic" | grep -o '"iter":[0-9]*' | cut -d: -f2)
  [ "${iter:-0}" -ge 1 ] && break
  sleep 0.05
done
[ "${iter:-0}" -ge 1 ] || fail "cancel victim never started iterating"
curl -sf -X DELETE "$base/v1/jobs/$vic" >/dev/null || fail "DELETE failed"
wait_state "$vic" canceled 100
[ "$(metric 'wsesimd_jobs_canceled_total{backend="wafer"}')" -ge 1 ] \
  || fail "canceled job not counted in /metrics"
# Canceling a terminal job conflicts.
code=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "$base/v1/jobs/$vic")
[ "$code" = 409 ] || fail "second DELETE returned $code, want 409"

# --- 3. deadline expiry (distinct terminal state) -------------------
exp=$(submit '{"problem":"momentum","nx":8,"ny":8,"nz":32,"max_iter":100,"timeout_ms":1}')
[ -n "$exp" ] || fail "deadline-job submit returned no id"
wait_state "$exp" expired 200
[ "$(metric 'wsesimd_jobs_expired_total{backend="wafer"}')" -ge 1 ] \
  || fail "expired job not counted in /metrics"

# --- 4. kill -9 mid-solve → restart re-runs bit-identically ---------
big=$(submit "$longspec")
[ -n "$big" ] || fail "kill-victim submit returned no id"
for _ in $(seq 1 200); do
  iter=$(curl -sf "$base/v1/jobs/$big" | grep -o '"iter":[0-9]*' | cut -d: -f2)
  [ "${iter:-0}" -ge 1 ] && break
  sleep 0.05
done
[ "${iter:-0}" -ge 1 ] || fail "kill victim never started iterating"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
grep -q '"state":"running"' "$spool/$big.json" \
  || fail "kill victim not recorded running in spool: $(cat "$spool/$big.json")"

start_daemon
wait_state "$big" done
bigsol=$(mktemp)
curl -sf "$base/v1/jobs/$big/solution" >"$bigsol" || fail "re-run solution fetch failed"
refres=$(grep -o '"result":.*' "$refsol") || fail "reference solution has no result"
bigres=$(grep -o '"result":.*' "$bigsol") || fail "re-run solution has no result"
[ "$refres" = "$bigres" ] || fail "re-run result differs from uninterrupted reference"
rm -f "$refsol" "$bigsol"

# --- 5. corrupt spool record is quarantined, not fatal --------------
kill -TERM "$pid"; wait "$pid" || fail "daemon exited non-zero on SIGTERM"
pid=""
printf '{"id":"j9' >"$spool/j999999.json"
start_daemon
[ -f "$spool/quarantine/j999999.json" ] || fail "corrupt record not moved to quarantine"
[ "$(metric 'wsesimd_spool_quarantined_total')" -ge 1 ] \
  || fail "quarantine not counted in /metrics"
grep -q 'quarantined j999999.json' "$log" || fail "quarantine not logged"

# --- 6. injected spool-write faults degrade, never kill -------------
kill -TERM "$pid"; wait "$pid" || fail "daemon exited non-zero on SIGTERM"
pid=""
# Let the submission write through, then fault a mid-run state write.
start_daemon -inject-spool-faults 'write:.json:2:1:enospc'
fj=$(submit '{"problem":"momentum","nx":4,"ny":4,"nz":8,"max_iter":4}')
[ -n "$fj" ] || fail "submit under fault injection returned no id"
wait_state "$fj" done 100
curl -sf "$base/healthz" | grep -q '"status":"ok"' || fail "daemon unhealthy after injected fault"

# --- 7. ssbench cancel mix ------------------------------------------
bench=$(go run ./cmd/ssbench -addr "$base" -mix mixed -cancel-frac 0.4 -ops 12 -c 3) \
  || fail "ssbench cancel mix failed: $bench"
echo "$bench" | grep -q 'cancels' || fail "ssbench output has no cancels line: $bench"

echo "chaos_smoke: PASS"
