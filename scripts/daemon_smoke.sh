#!/usr/bin/env bash
# End-to-end smoke of the wsesimd daemon (CI runs this; it also works
# locally): start it on a spool, submit and fetch a solve over HTTP,
# SIGTERM it mid-solve and verify the in-flight job suspends with a
# checkpoint, restart it and verify the job resumes to completion,
# demonstrate a warm-machine cache hit on /metrics, drive it with
# ssbench, and bounce malformed requests. Needs only curl + grep.
set -euo pipefail
cd "$(dirname "$0")/.."

addr=127.0.0.1:18931
base="http://$addr"
spool=$(mktemp -d)
log=$(mktemp)
bin=$(mktemp -d)/wsesimd
pid=""

cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$spool" "$log" "$(dirname "$bin")"
}
trap cleanup EXIT

fail() { echo "daemon_smoke: FAIL: $*" >&2; echo "--- daemon log ---" >&2; cat "$log" >&2; exit 1; }

status_code() { curl -s -o /dev/null -w '%{http_code}' "$@"; }

wait_ready() {
  for _ in $(seq 1 100); do
    curl -sf "$base/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  fail "daemon never became ready"
}

go build -o "$bin" ./cmd/wsesimd

start_daemon() {
  "$bin" -addr "$addr" -spool "$spool" -workers 2 -suspend-every 2 >>"$log" 2>&1 &
  pid=$!
  wait_ready
}

start_daemon

# --- 1. submit → poll → solution ------------------------------------
id=$(curl -sf "$base/v1/jobs" -d '{"problem":"momentum","nx":4,"ny":4,"nz":8,"max_iter":4}' \
  | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$id" ] || fail "submit returned no job id"
for _ in $(seq 1 100); do
  state=$(curl -sf "$base/v1/jobs/$id" | grep -o '"state":"[^"]*"' | cut -d'"' -f4)
  [ "$state" = done ] && break
  [ "$state" = failed ] && fail "job $id failed"
  sleep 0.1
done
[ "$state" = done ] || fail "job $id stuck in state $state"
curl -sf "$base/v1/jobs/$id/solution" | grep -q '"x":\[' || fail "solution has no x vector"
curl -sf "$base/v1/jobs/$id/solution" | grep -q '"backend":"wafer"' || fail "solution has no telemetry"

# A second same-shape job must reuse the warm machine: hit count goes up.
curl -sf "$base/v1/jobs" -d '{"problem":"poisson","nx":4,"ny":4,"nz":8,"max_iter":4}' >/dev/null
for _ in $(seq 1 100); do
  hits=$(curl -sf "$base/metrics" | grep '^wsesimd_machine_cache_hits_total' | awk '{print $2}')
  [ "${hits:-0}" -ge 1 ] && break
  sleep 0.1
done
[ "${hits:-0}" -ge 1 ] || fail "no machine-cache hit after a same-shape job (hits=$hits)"

# The resilience counter families must be exported from first use of a
# backend (zero-valued until exercised; scripts/chaos_smoke.sh drives
# them up).
metrics=$(curl -sf "$base/metrics")
for fam in wsesimd_spool_quarantined_total \
  'wsesimd_jobs_canceled_total{backend="wafer"}' \
  'wsesimd_jobs_expired_total{backend="wafer"}' \
  'wsesimd_breaker_trips_total{backend="wafer"}' \
  'wsesimd_fallback_solves_total{backend="wafer"}'; do
  echo "$metrics" | grep -qF "$fam" || fail "/metrics missing family $fam"
done

# --- 2. SIGTERM mid-solve → suspended checkpoint → restart resumes ---
# First run the same spec uninterrupted as a reference: the resumed job
# must reproduce its solution byte for byte (jobs are deterministic, so
# identical specs give identical results — interrupted or not).
longspec='{"problem":"momentum","nx":8,"ny":8,"nz":32,"max_iter":100}'
ref=$(curl -sf "$base/v1/jobs" -d "$longspec" | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$ref" ] || fail "reference-job submit returned no id"
for _ in $(seq 1 600); do
  state=$(curl -sf "$base/v1/jobs/$ref" | grep -o '"state":"[^"]*"' | cut -d'"' -f4)
  [ "$state" = done ] && break
  [ "$state" = failed ] && fail "reference job failed"
  sleep 0.1
done
[ "$state" = done ] || fail "reference job stuck in state $state"
refsol=$(mktemp)
curl -sf "$base/v1/jobs/$ref/solution" >"$refsol" || fail "reference solution fetch failed"

big=$(curl -sf "$base/v1/jobs" -d "$longspec" \
  | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$big" ] || fail "long-job submit returned no id"
for _ in $(seq 1 200); do
  iter=$(curl -sf "$base/v1/jobs/$big" | grep -o '"iter":[0-9]*' | cut -d: -f2)
  [ "${iter:-0}" -ge 1 ] && break
  sleep 0.05
done
[ "${iter:-0}" -ge 1 ] || fail "long job never started iterating"
kill -TERM "$pid"
wait "$pid" || fail "daemon exited non-zero on SIGTERM"
pid=""
grep -q '"state":"suspended"' "$spool/$big.json" || fail "long job not suspended in spool: $(cat "$spool/$big.json")"
[ -s "$spool/$big.ckpt" ] || fail "no checkpoint blob for suspended job"

start_daemon
for _ in $(seq 1 600); do
  state=$(curl -sf "$base/v1/jobs/$big" | grep -o '"state":"[^"]*"' | cut -d'"' -f4)
  [ "$state" = done ] && break
  [ "$state" = failed ] && fail "resumed job failed"
  sleep 0.1
done
[ "$state" = done ] || fail "resumed job stuck in state $state"
bigsol=$(mktemp)
curl -sf "$base/v1/jobs/$big/solution" >"$bigsol" || fail "resumed solution fetch failed"
# The job envelope (id, submitted_at, attempts) legitimately differs;
# the solver result — history, solution vector, telemetry — must not.
refres=$(grep -o '"result":.*' "$refsol") || fail "reference solution has no result"
bigres=$(grep -o '"result":.*' "$bigsol") || fail "resumed solution has no result"
[ "$refres" = "$bigres" ] || fail "resumed result differs from uninterrupted reference run"
rm -f "$refsol" "$bigsol"
[ -e "$spool/$big.ckpt" ] && fail "checkpoint blob not removed after completion"

# --- 3. ssbench drives the daemon -----------------------------------
bench=$(go run ./cmd/ssbench -addr "$base" -mix mixed -ops 12 -c 3) \
  || fail "ssbench failed: $bench"
echo "$bench" | grep -q 'ops/s' || fail "ssbench produced no throughput line: $bench"

# --- 4. malformed requests bounce, correctly typed ------------------
[ "$(status_code "$base/v1/jobs" -d '{"nx":4,"ny":4,"nz":8,"backend":"gpu"}')" = 400 ] || fail "bad backend not 400"
[ "$(status_code "$base/v1/jobs" -d '{"nx":4,"ny":4,"nz":7,"backend":"wafer"}')" = 400 ] || fail "odd nz not 400"
[ "$(status_code "$base/v1/jobs" -d '{"nx":4,"ny":4,"nz":8,"frobnicate":1}')" = 400 ] || fail "unknown field not 400"
[ "$(status_code "$base/v1/jobs" -d 'not json')" = 400 ] || fail "non-JSON not 400"
[ "$(status_code "$base/v1/jobs/j999999")" = 404 ] || fail "unknown job not 404"

echo "daemon_smoke: PASS"
